//! The curated mutation campaign and its driver.
//!
//! Each [`MutantSpec`] injects one bug into one layer of the stack and
//! names the oracle that must notice:
//!
//! * **Litmus** (`vrm-memmodel`): a battery program is mutated and rerun
//!   through all three models; the kill signal is a flipped
//!   allowed/forbidden verdict (axiomatic-vs-SC divergence appearing or
//!   vanishing where the expectation says otherwise).
//! * **Kernel** (`vrm-core`): a paper example or the Figure 7 ticket lock
//!   is mutated and rerun through [`check_wdrf`] or [`check_pushpull`];
//!   the kill signal is a failed wDRF verdict.
//! * **Machine** (`vrm-sekvm`): a `KCoreConfig` switch re-creates a
//!   hypervisor-level bug; the kill signal is a `validate_log` violation
//!   on every-schedule exploration or a `check_invariants` breach.
//! * **Spec** (`vrm-spec` × `vrm-sekvm`): a `KCoreConfig` switch breaks
//!   the forward simulation into the abstract ownership machine (an
//!   unscrubbed reclaim, a leaked ownership transfer, a kept share, a
//!   skipped host unmap); the kill signal is a
//!   `Machine::check_refinement` violation on every-schedule
//!   exploration.
//! * **Engine** (`vrm-explore`): a degradation rule (truncation →
//!   `Unknown`) is re-implemented with its soundness guard removed and
//!   judged against the real engine on a deliberately budget-starved
//!   check; the kill signal is the bugged rule disagreeing with the
//!   sound one. A survivor here would mean a truncated run can launder
//!   into a definite pass/fail.
//! * **Serve** (`vrm-serve`): a `ServeConfig` switch breaks the
//!   daemon's caching discipline (a cache key that ignores the budget,
//!   an escalation lane that forgets its checkpoint); the kill signal
//!   is the bugged daemon's end-to-end submit→verdict behaviour
//!   diverging from the sound daemon's on the same query sequence — a
//!   stale `Unknown` served where a fresh walk proves `Pass`, or a
//!   restarted walk re-paying states a resume would have kept.
//! * **Gen** (`vrm-memmodel::gen`): a `GenConfig` switch breaks the
//!   litmus generator feeding the differential fuzzer (a generator
//!   whose programs never close a critical cycle, a shrinker that
//!   stops re-checking the failure predicate); the kill signal is the
//!   bugged generator pipeline losing the relaxed-behaviour signal the
//!   sound one produces. A survivor here would mean the standing
//!   fuzzer could silently degrade into one that can never find — or
//!   never keep — a counterexample.
//!
//! Oracles that themselves run bounded explorations degrade soundly: a
//! truncated enumeration that found no violation yields
//! [`Status::Unknown`] (counted as *not killed*, so the 100%-kill gate
//! trips), while a violation observed on a concretely executed schedule
//! remains a kill even under truncation.
//!
//! [`curated`] returns the shipped set — every entry is expected to be
//! **killed**; `tests/mutation_campaign.rs` and CI enforce the 100% kill
//! rate. [`run`] executes a set and aggregates per-mutant exploration
//! statistics.

use std::time::{Duration, Instant};

use vrm_core::pushpull::check_pushpull;
use vrm_core::{check_wdrf, paper_examples, KernelSpec, WdrfCheckConfig};
use vrm_explore::{Completeness, ExploreConfig, ExploreStats, Verdict};
use vrm_memmodel::ir::Program;
use vrm_memmodel::litmus::{battery, check_with_jobs, LitmusTest};
use vrm_memmodel::promising::PromisingConfig;
use vrm_sekvm::layout::{page_addr, PAGE_WORDS, VM_POOL_PFN};
use vrm_sekvm::machine::{ExhaustiveConfig, Machine, Op, Script};
use vrm_sekvm::mutants::CaughtBy;
use vrm_sekvm::security::check_invariants;
use vrm_sekvm::{KCore, KCoreConfig};

use crate::ir::{apply, find_sites, Mutation, MutationKind};

/// Which layer of the stack a mutant lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Litmus programs checked by the three memory models.
    Litmus,
    /// Kernel-scale programs checked by the static wDRF theorem checkers.
    Kernel,
    /// The executable hypervisor machine model.
    Machine,
    /// The refinement-spec layer: the concrete machine's simulation of
    /// the abstract ownership machine.
    Spec,
    /// The exploration engine's graceful-degradation machinery itself.
    Engine,
    /// The verification-as-a-service daemon's caching and scheduling
    /// discipline.
    Serve,
    /// The litmus generator behind the standing differential fuzzer.
    Gen,
}

impl Layer {
    /// Short name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Layer::Litmus => "litmus",
            Layer::Kernel => "kernel",
            Layer::Machine => "machine",
            Layer::Spec => "spec",
            Layer::Engine => "engine",
            Layer::Serve => "serve",
            Layer::Gen => "gen",
        }
    }
}

/// The checker expected to kill a mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Cross-model conformance: the allowed/forbidden verdict flips.
    Conformance,
    /// [`check_wdrf`]: the RM ⊆ SC comparison fails.
    Wdrf,
    /// [`check_pushpull`]: ownership or barrier-fulfilment discipline
    /// fails (conditions 1/2).
    PushPull,
    /// `validate_log` flags a dynamic wDRF violation on some schedule.
    ValidateLog,
    /// `check_invariants` finds a broken security invariant.
    Invariants,
    /// `Machine::check_refinement` finds a concrete transition that does
    /// not simulate the abstract ownership machine.
    Refinement,
    /// A guard-stripped reimplementation of a degradation rule disagrees
    /// with the sound engine on a real budget-starved check.
    Degradation,
    /// A bugged `vrm-serve` daemon's end-to-end submit→verdict
    /// behaviour diverges from the sound daemon's on the same query
    /// sequence.
    Serve,
    /// The differential-fuzz pipeline over generated programs loses a
    /// signal the sound generator/shrinker produces.
    DiffFuzz,
    /// A guard-stripped reimplementation of a state-space reduction
    /// rule disagrees with the sound reduced engine on a battery test —
    /// either on the deterministic state counts the bench anchors pin,
    /// or on the outcome set itself.
    Reduction,
}

impl Oracle {
    /// Short name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Oracle::Conformance => "conformance",
            Oracle::Wdrf => "check_wdrf",
            Oracle::PushPull => "check_pushpull",
            Oracle::ValidateLog => "validate_log",
            Oracle::Invariants => "check_invariants",
            Oracle::Refinement => "refinement",
            Oracle::Degradation => "degradation",
            Oracle::Serve => "serve",
            Oracle::DiffFuzz => "diff-fuzz",
            Oracle::Reduction => "reduction",
        }
    }
}

/// What happened to one mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The oracle rejected the mutant.
    Killed,
    /// The oracle saw nothing wrong.
    Survived,
    /// The oracle's exploration failed outright (every parallel worker
    /// died) before it could decide.
    Timeout,
    /// The oracle's enumeration was truncated by a budget and found no
    /// violation; absence over a partial walk proves nothing. Counted
    /// as *not killed*, so `all_killed` (and the CI 100%-kill gate)
    /// flags it — a mutant must never escape behind a truncated check.
    Unknown,
}

impl Status {
    /// Short name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Killed => "killed",
            Status::Survived => "survived",
            Status::Timeout => "timeout",
            Status::Unknown => "unknown",
        }
    }
}

/// The subject a spec mutates and the oracle wiring for it.
#[derive(Debug, Clone)]
enum Subject {
    /// Mutate a litmus test, keep its expectations, re-check conformance.
    Litmus {
        test: LitmusTest,
        mutations: Vec<Mutation>,
    },
    /// Mutate a kernel program, expect [`check_wdrf`] to fail.
    Wdrf {
        prog: Program,
        spec: KernelSpec,
        mutations: Vec<Mutation>,
    },
    /// Mutate a kernel program, expect [`check_pushpull`] to fail.
    PushPull {
        prog: Program,
        spec: KernelSpec,
        mutations: Vec<Mutation>,
    },
    /// A `KCoreConfig` switch checked by log validation over every
    /// schedule of a minimal unmap-heavy workload.
    MachineLog { cfg: KCoreConfig },
    /// A `KCoreConfig` switch checked by the security invariant sweep.
    MachineInvariants { cfg: KCoreConfig },
    /// A `KCoreConfig` switch checked by per-transition refinement over
    /// every schedule of a lifecycle workload.
    MachineRefinement { cfg: KCoreConfig },
    /// A guard-stripped degradation rule judged against the engine.
    Degradation { variant: DegradationVariant },
    /// A `ServeConfig` switch judged by running the bugged daemon and
    /// the sound daemon through the same query sequence.
    Serve { variant: ServeVariant },
    /// A `GenConfig` switch judged by running the bugged generator
    /// pipeline and the sound one over the same seeds.
    Gen { variant: GenVariant },
    /// A guard-stripped state-space reduction rule judged against the
    /// sound reduced engine on a battery test.
    Reduction { variant: ReductionVariant },
}

/// Which reduction rule a `Subject::Reduction` mutant re-implements
/// with its soundness guard removed (`docs/REDUCTION.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionVariant {
    /// The sleep-set driver with blocking deleted: every child starts
    /// awake, so no commuting interleaving is ever pruned. The walk
    /// stays outcome-correct but its popped/states counts drift off the
    /// bench anchors `BENCH_explore.json` pins.
    SleepSetNeverBlocks,
    /// `Deps::canon` replaced by the identity on a space whose orbit
    /// map treats *all* threads as interchangeable — an unsound
    /// over-prune that merges non-symmetric interleavings and
    /// manufactures outcomes the real machine forbids, flipping a
    /// corpus verdict.
    CanonIdentity,
}

impl ReductionVariant {
    /// Human description of the injected change.
    pub fn describe(&self) -> &'static str {
        match self {
            ReductionVariant::SleepSetNeverBlocks => {
                "sleep-set driver whose sleep sets never block a child"
            }
            ReductionVariant::CanonIdentity => {
                "orbit map declaring all threads symmetric regardless of their code"
            }
        }
    }
}

/// Which engine degradation rule a `Subject::Degradation` mutant
/// re-implements with the soundness guard removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationVariant {
    /// `Verdict::from_parts` with the completeness check deleted: a
    /// truncated walk that happened to see no counterexample reports a
    /// definite pass (or fail) instead of `Unknown`.
    IgnoreTruncation,
    /// `Completeness::merge` where the *last* stage wins instead of
    /// truncation being sticky: an exhaustive final stage overwrites an
    /// earlier truncated one and launders partial coverage.
    ExhaustiveMergeWins,
    /// An exit-code map that collapses `Unknown` onto the success path,
    /// making a truncated run indistinguishable from a verified pass
    /// to CI.
    UnknownExitsZero,
}

impl DegradationVariant {
    /// Human description of the injected change.
    pub fn describe(&self) -> &'static str {
        match self {
            DegradationVariant::IgnoreTruncation => {
                "Verdict::from_parts without the completeness guard"
            }
            DegradationVariant::ExhaustiveMergeWins => {
                "Completeness::merge where the last stage overwrites truncation"
            }
            DegradationVariant::UnknownExitsZero => "exit-code map sending Unknown to 0",
        }
    }
}

/// Which `vrm-serve` caching-discipline switch a `Subject::Serve`
/// mutant flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeVariant {
    /// `ServeConfig::digest_includes_config = false`: the cache key
    /// ignores the budget, so a re-query with a *larger* budget
    /// aliases to the old budget's cached `Unknown` instead of running
    /// the walk that would prove `Pass` — a stale verdict served after
    /// a config change.
    StaleAfterConfigChange,
    /// `ServeConfig::reuse_checkpoints = false`: the escalation lane
    /// forgets the suspended walk it parked, so every budget-doubling
    /// retry restarts from scratch and re-pays states the checkpoint
    /// already covered.
    EscalationDropsCheckpoint,
    /// `WorkerIsolation::ignore_deadline = true`: the supervisor waits
    /// out a hung worker instead of SIGKILLing it at deadline+grace —
    /// the daemon outage process isolation exists to prevent, detected
    /// as the oracle's wall clock crossing the worker's sleep.
    SupervisorIgnoresDeadline,
    /// `StoreOptions::verify_checksums = false`: WAL replay accepts a
    /// record whose payload no longer matches its checksum, so a
    /// corrupted verdict is resurrected into the cache as if intact.
    WalSkipsChecksum,
}

impl ServeVariant {
    /// Human description of the injected change.
    pub fn describe(&self) -> &'static str {
        match self {
            ServeVariant::StaleAfterConfigChange => {
                "ServeConfig cache key that ignores the verdict-relevant config"
            }
            ServeVariant::EscalationDropsCheckpoint => {
                "ServeConfig escalation lane that drops parked checkpoints"
            }
            ServeVariant::SupervisorIgnoresDeadline => {
                "WorkerIsolation supervisor that never kills a hung worker"
            }
            ServeVariant::WalSkipsChecksum => {
                "StoreOptions WAL replay that skips checksum verification"
            }
        }
    }
}

/// Which `vrm_memmodel::gen::GenConfig` switch a `Subject::Gen` mutant
/// flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenVariant {
    /// `GenConfig::po_cycle_free = true`: every generated thread's
    /// second event lands on a private location, so no critical cycle
    /// ever closes and the "fuzzer" sweeps a corpus that can never
    /// exhibit a relaxed-only outcome — it would pass forever while
    /// testing nothing.
    PoCycleFree,
    /// `GenConfig::recheck_shrinks = false`: the shrinker accepts every
    /// simplification without re-running the failure predicate, so the
    /// minimized program it dumps can silently stop exhibiting the
    /// disagreement it was meant to witness.
    ShrinkerSkipsRecheck,
}

impl GenVariant {
    /// Human description of the injected change.
    pub fn describe(&self) -> &'static str {
        match self {
            GenVariant::PoCycleFree => "GenConfig generator that never closes a critical cycle",
            GenVariant::ShrinkerSkipsRecheck => "GenConfig shrinker that skips predicate re-checks",
        }
    }
}

/// One campaign entry: a named mutant plus its oracle.
#[derive(Debug, Clone)]
pub struct MutantSpec {
    /// Unique mutant name (kebab-case).
    pub name: String,
    /// Layer the bug is injected into.
    pub layer: Layer,
    /// Checker expected to kill it.
    pub oracle: Oracle,
    /// Human description of the injected change.
    pub mutation: String,
    subject: Subject,
}

impl MutantSpec {
    /// A litmus-layer mutant: `mutations` applied to `test`'s program,
    /// expectations kept, killed on any conformance-verdict flip.
    pub fn litmus(name: &str, test: LitmusTest, mutations: Vec<Mutation>) -> Self {
        let mutation = describe(&mutations);
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Litmus,
            oracle: Oracle::Conformance,
            mutation,
            subject: Subject::Litmus { test, mutations },
        }
    }

    /// A kernel-layer mutant killed by [`check_wdrf`].
    pub fn wdrf(name: &str, prog: Program, spec: KernelSpec, mutations: Vec<Mutation>) -> Self {
        let mutation = describe(&mutations);
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Kernel,
            oracle: Oracle::Wdrf,
            mutation,
            subject: Subject::Wdrf {
                prog,
                spec,
                mutations,
            },
        }
    }

    /// A kernel-layer mutant killed by [`check_pushpull`].
    pub fn pushpull(name: &str, prog: Program, spec: KernelSpec, mutations: Vec<Mutation>) -> Self {
        let mutation = describe(&mutations);
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Kernel,
            oracle: Oracle::PushPull,
            mutation,
            subject: Subject::PushPull {
                prog,
                spec,
                mutations,
            },
        }
    }

    /// A machine- or spec-layer mutant from the `vrm-sekvm` suite, with
    /// the layer and oracle chosen from its [`CaughtBy`] expectation.
    pub fn machine(mutant: &vrm_sekvm::mutants::Mutant) -> Self {
        let (layer, oracle, subject) = match mutant.caught_by {
            CaughtBy::SequentialTlbi | CaughtBy::LockDiscipline => (
                Layer::Machine,
                Oracle::ValidateLog,
                Subject::MachineLog { cfg: mutant.cfg },
            ),
            CaughtBy::SecurityInvariants => (
                Layer::Machine,
                Oracle::Invariants,
                Subject::MachineInvariants { cfg: mutant.cfg },
            ),
            CaughtBy::Refinement => (
                Layer::Spec,
                Oracle::Refinement,
                Subject::MachineRefinement { cfg: mutant.cfg },
            ),
        };
        MutantSpec {
            name: mutant.name.to_string(),
            layer,
            oracle,
            mutation: format!("KCoreConfig switch `{}`", mutant.name),
            subject,
        }
    }

    /// An engine-layer mutant: one degradation rule re-implemented with
    /// its soundness guard removed, killed iff the bugged rule disagrees
    /// with the real engine on a budget-starved wDRF check.
    pub fn degradation(name: &str, variant: DegradationVariant) -> Self {
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Engine,
            oracle: Oracle::Degradation,
            mutation: variant.describe().to_string(),
            subject: Subject::Degradation { variant },
        }
    }

    /// A serve-layer mutant: one `ServeConfig` caching-discipline
    /// switch flipped, killed iff the bugged daemon's end-to-end
    /// behaviour diverges from the sound daemon's in the predicted
    /// unsound way.
    pub fn serve(name: &str, variant: ServeVariant) -> Self {
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Serve,
            oracle: Oracle::Serve,
            mutation: variant.describe().to_string(),
            subject: Subject::Serve { variant },
        }
    }

    /// An engine-layer mutant: one state-space reduction rule
    /// re-implemented with its soundness guard removed, killed iff the
    /// bugged walk disagrees with the sound reduced walk on a battery
    /// test — in its anchored state counts or in its outcome set.
    pub fn reduction(name: &str, variant: ReductionVariant) -> Self {
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Engine,
            oracle: Oracle::Reduction,
            mutation: variant.describe().to_string(),
            subject: Subject::Reduction { variant },
        }
    }

    /// A gen-layer mutant: one `GenConfig` generator-pipeline switch
    /// flipped, killed iff the bugged pipeline loses the
    /// relaxed-behaviour signal the sound one produces on the same
    /// seeds.
    pub fn generator(name: &str, variant: GenVariant) -> Self {
        MutantSpec {
            name: name.to_string(),
            layer: Layer::Gen,
            oracle: Oracle::DiffFuzz,
            mutation: variant.describe().to_string(),
            subject: Subject::Gen { variant },
        }
    }
}

fn describe(mutations: &[Mutation]) -> String {
    mutations
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// One mutant's outcome.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// Mutant name.
    pub name: String,
    /// Layer the bug lives in.
    pub layer: Layer,
    /// Oracle that judged it.
    pub oracle: Oracle,
    /// Human description of the injected change.
    pub mutation: String,
    /// Killed / survived / timeout.
    pub status: Status,
    /// What the oracle saw (first violation, verdict, or error).
    pub detail: String,
    /// Exploration statistics for this mutant's checks.
    pub stats: ExploreStats,
}

/// Aggregate outcome of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-mutant outcomes, in spec order.
    pub results: Vec<MutantResult>,
    /// Folded exploration statistics across every mutant.
    pub stats: ExploreStats,
}

impl CampaignReport {
    /// Number of killed mutants.
    pub fn killed(&self) -> usize {
        self.count(Status::Killed)
    }

    /// Number of surviving mutants.
    pub fn survived(&self) -> usize {
        self.count(Status::Survived)
    }

    /// Number of mutants whose oracle hit an exploration bound.
    pub fn timeouts(&self) -> usize {
        self.count(Status::Timeout)
    }

    /// Number of mutants whose oracle truncated without a verdict.
    pub fn unknowns(&self) -> usize {
        self.count(Status::Unknown)
    }

    fn count(&self, s: Status) -> usize {
        self.results.iter().filter(|r| r.status == s).count()
    }

    /// Killed / total, in `[0, 1]`; 1.0 for an empty campaign.
    pub fn kill_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        self.killed() as f64 / self.results.len() as f64
    }

    /// `true` iff every mutant was killed.
    pub fn all_killed(&self) -> bool {
        self.killed() == self.results.len()
    }
}

/// How a campaign run is driven.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads for every exploration (defaults to `VRM_JOBS`).
    pub jobs: usize,
    /// State cap for the machine-layer schedule exploration.
    pub machine_max_states: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            jobs: ExploreConfig::jobs_from_env(),
            machine_max_states: 1 << 18,
        }
    }
}

/// Applies a mutation chain, or reports the stale site.
fn apply_all(prog: &Program, mutations: &[Mutation]) -> Result<Program, String> {
    let mut out = prog.clone();
    for m in mutations {
        out = apply(&out, m).ok_or_else(|| format!("stale mutation site: {m}"))?;
    }
    Ok(out)
}

/// A minimal two-CPU workload that exercises the map → grant → revoke
/// path (one `clear_s2pt` with its barrier + TLBI obligation) while a
/// second CPU contends on the VmId lock: the shared `unmap` workload
/// from the sekvm registry. Small enough for every-schedule
/// exploration, rich enough that each machine-layer log mutant shows up.
fn unmap_scripts() -> Vec<Script> {
    vrm_sekvm::workloads::unmap()
}

/// The unmap workload extended with a VM secret write and a final
/// reclaim: the smallest every-schedule workload on which each
/// spec-layer mutant's concrete transition disagrees with its abstract
/// label (an unscrubbed secret, a leaked ownership transfer, a kept
/// share, a skipped host unmap).
fn spec_scripts() -> Vec<Script> {
    let gpa = 64 * PAGE_WORDS;
    vec![
        vec![
            Op::RegisterVm,
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::VmWrite {
                gpa: gpa + 5,
                val: 0x5ec2e7,
            },
            Op::Grant { gpa },
            Op::Revoke { gpa },
            Op::Reclaim,
        ],
        vec![Op::RegisterVm],
    ]
}

/// Boots one 2-page VM directly on a fresh KCore (the machine-layer
/// invariant scenario).
fn boot_one_vm(cfg: KCoreConfig) -> KCore {
    let mut k = KCore::boot(cfg);
    let pfns = vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1];
    let mut words = Vec::new();
    for &pfn in &pfns {
        for w in 0..PAGE_WORDS {
            let v = pfn + w;
            k.mem.write(page_addr(pfn) + w, v);
            words.push(v);
        }
    }
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(0).expect("register_vm");
    k.register_vcpu(0, vmid).expect("register_vcpu");
    k.set_boot_info(0, vmid, pfns, hash).expect("set_boot_info");
    k.remap_vm_image(0, vmid).expect("remap_vm_image");
    k.verify_vm_image(0, vmid).expect("verify_vm_image");
    k
}

/// Runs one spec through its oracle.
fn run_one(spec: &MutantSpec, cfg: &CampaignConfig) -> MutantResult {
    let started = Instant::now();
    let (status, detail, mut stats) = match &spec.subject {
        Subject::Litmus { test, mutations } => run_litmus(test, mutations, cfg),
        Subject::Wdrf {
            prog,
            spec: kspec,
            mutations,
        } => run_wdrf(prog, kspec, mutations, cfg),
        Subject::PushPull {
            prog,
            spec: kspec,
            mutations,
        } => run_pushpull(prog, kspec, mutations),
        Subject::MachineLog { cfg: kcfg } => run_machine_log(*kcfg, cfg),
        Subject::MachineInvariants { cfg: kcfg } => run_machine_invariants(*kcfg),
        Subject::MachineRefinement { cfg: kcfg } => run_machine_refinement(*kcfg, cfg),
        Subject::Degradation { variant } => run_degradation(*variant, cfg),
        Subject::Serve { variant } => run_serve(*variant, cfg),
        Subject::Gen { variant } => run_gen(*variant, cfg),
        Subject::Reduction { variant } => run_reduction(*variant),
    };
    if stats.wall_ns == 0 {
        stats.wall_ns = started.elapsed().as_nanos() as u64;
    }
    MutantResult {
        name: spec.name.clone(),
        layer: spec.layer,
        oracle: spec.oracle,
        mutation: spec.mutation.clone(),
        status,
        detail,
        stats,
    }
}

fn run_litmus(
    test: &LitmusTest,
    mutations: &[Mutation],
    cfg: &CampaignConfig,
) -> (Status, String, ExploreStats) {
    let program = match apply_all(&test.program, mutations) {
        Ok(p) => p,
        Err(e) => return (Status::Survived, e, ExploreStats::default()),
    };
    let mutated = LitmusTest {
        program,
        condition: test.condition.clone(),
        allowed_on_arm: test.allowed_on_arm,
        allowed_on_sc: test.allowed_on_sc,
    };
    match check_with_jobs(&mutated, cfg.jobs) {
        Err(e) => (Status::Timeout, e.to_string(), ExploreStats::default()),
        Ok(c) => {
            let mut stats = c.sc.stats;
            stats.absorb(&c.promising.stats);
            stats.absorb(&c.axiomatic.stats);
            let on_arm = c.promising.contains_binding(&mutated.condition);
            let on_sc = c.sc.contains_binding(&mutated.condition);
            // An outcome *observed* where the expectation forbids one is
            // positive evidence — emissions are a sound subset even of a
            // truncated enumeration, so this kill survives truncation.
            let killed_by_presence =
                (on_arm && !mutated.allowed_on_arm) || (on_sc && !mutated.allowed_on_sc);
            if c.truncated && !killed_by_presence {
                // Any other flip rests on an outcome's *absence*, which
                // a truncated enumeration cannot establish.
                (
                    Status::Unknown,
                    "conformance check truncated; no verdict".to_string(),
                    stats,
                )
            } else if c.verdicts_match {
                (
                    Status::Survived,
                    format!(
                        "verdict unchanged (arm={on_arm}, sc={on_sc}); \
                         the injected bug is invisible to the models"
                    ),
                    stats,
                )
            } else {
                (
                    Status::Killed,
                    format!(
                        "verdict flipped: condition {:?} now arm={on_arm} \
                         (expected {}), sc={on_sc} (expected {})",
                        mutated.condition, mutated.allowed_on_arm, mutated.allowed_on_sc
                    ),
                    stats,
                )
            }
        }
    }
}

fn run_wdrf(
    prog: &Program,
    kspec: &KernelSpec,
    mutations: &[Mutation],
    cfg: &CampaignConfig,
) -> (Status, String, ExploreStats) {
    let mutated = match apply_all(prog, mutations) {
        Ok(p) => p,
        Err(e) => return (Status::Survived, e, ExploreStats::default()),
    };
    let mut wcfg = WdrfCheckConfig {
        skip_sync_conditions: true,
        jobs: cfg.jobs,
        ..Default::default()
    };
    wcfg.promising.max_promises_per_thread = 1;
    wcfg.promising.value_cfg.max_rounds = 3;
    match check_wdrf(&mutated, kspec, &wcfg) {
        Err(e) => (Status::Timeout, e.to_string(), ExploreStats::default()),
        // A counterexample (RM-only outcome) is concrete iff both walks
        // behind the subset comparison were exhaustive — an outcome
        // "missing" from a truncated SC set proves nothing. Out-of-band
        // truncation (value analysis inside a condition check) does not
        // taint the subset theorem itself, so the kill stands.
        Ok(v) if !v.rm_subset_of_sc && !v.rm.truncated() && !v.sc.truncated() => (
            Status::Killed,
            format!(
                "RM-only outcome appeared: {:?}",
                v.counterexamples.first().map(|o| o.to_string())
            ),
            v.stats,
        ),
        Ok(v) if v.truncated => (
            Status::Unknown,
            "wDRF check truncated; no verdict".to_string(),
            v.stats,
        ),
        Ok(v) if v.rm_subset_of_sc => (
            Status::Survived,
            "RM ⊆ SC still holds for the mutated kernel".to_string(),
            v.stats,
        ),
        Ok(v) => (
            Status::Killed,
            format!(
                "RM-only outcome appeared: {:?}",
                v.counterexamples.first().map(|o| o.to_string())
            ),
            v.stats,
        ),
    }
}

fn run_pushpull(
    prog: &Program,
    kspec: &KernelSpec,
    mutations: &[Mutation],
) -> (Status, String, ExploreStats) {
    let mutated = match apply_all(prog, mutations) {
        Ok(p) => p,
        Err(e) => return (Status::Survived, e, ExploreStats::default()),
    };
    let pcfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    match check_pushpull(&mutated, kspec, &pcfg) {
        Err(e) => (Status::Timeout, e.to_string(), ExploreStats::default()),
        Ok(r) => {
            let stats = ExploreStats {
                states: r.states_explored,
                ..Default::default()
            };
            if r.drf_kernel_holds() && r.no_barrier_misuse_holds() {
                (
                    Status::Survived,
                    "ownership and barrier discipline both held".to_string(),
                    stats,
                )
            } else {
                let v = r
                    .ownership_violations
                    .iter()
                    .chain(r.barrier_violations.iter())
                    .next();
                (
                    Status::Killed,
                    format!("push/pull discipline broken: {v:?}"),
                    stats,
                )
            }
        }
    }
}

fn run_machine_log(kcfg: KCoreConfig, cfg: &CampaignConfig) -> (Status, String, ExploreStats) {
    let ecfg = ExhaustiveConfig {
        max_states: cfg.machine_max_states,
        jobs: cfg.jobs,
        ..ExhaustiveConfig::default()
    };
    match Machine::explore_schedules(kcfg, unmap_scripts(), &ecfg) {
        Err(e) => (Status::Timeout, e.to_string(), ExploreStats::default()),
        Ok(report) => {
            let violation = report
                .outcomes
                .iter()
                .flat_map(|o| o.wdrf_violations.iter())
                .next();
            match violation {
                // A violation was observed on a concretely executed
                // schedule — real evidence even if the walk truncated.
                Some(v) => (
                    Status::Killed,
                    format!("dynamic wDRF violation on some schedule: {v}"),
                    report.stats,
                ),
                None if report.stats.completeness.is_truncated() => (
                    Status::Unknown,
                    format!(
                        "schedule exploration truncated after {} clean schedules; \
                         no verdict",
                        report.outcomes.len()
                    ),
                    report.stats,
                ),
                None => (
                    Status::Survived,
                    format!("all {} schedules validated clean", report.outcomes.len()),
                    report.stats,
                ),
            }
        }
    }
}

fn run_machine_invariants(kcfg: KCoreConfig) -> (Status, String, ExploreStats) {
    let mut k = boot_one_vm(kcfg);
    let vm_pfn = k.vm(0).expect("vm 0").image_pfns[0];
    // The (unchecked) KServ faults in a mapping of a VM-owned page; the
    // invariant sweep must flag the resulting double ownership.
    if k.kserv_fault(1, vm_pfn).is_err() {
        return (
            Status::Survived,
            "ownership check still rejects the hostile fault".to_string(),
            ExploreStats::default(),
        );
    }
    let inv = check_invariants(&k);
    match inv.first() {
        Some(v) => (
            Status::Killed,
            format!("security invariant broken: {v:?}"),
            ExploreStats::default(),
        ),
        None => (
            Status::Survived,
            "invariant sweep found nothing".to_string(),
            ExploreStats::default(),
        ),
    }
}

fn run_machine_refinement(
    kcfg: KCoreConfig,
    cfg: &CampaignConfig,
) -> (Status, String, ExploreStats) {
    let ecfg = ExhaustiveConfig {
        max_states: cfg.machine_max_states,
        jobs: cfg.jobs,
        ..ExhaustiveConfig::default()
    };
    match Machine::check_refinement(kcfg, spec_scripts(), &ecfg) {
        Err(e) => (Status::Timeout, e.to_string(), ExploreStats::default()),
        Ok(report) => match report.violations.iter().next() {
            // A simulation failure was observed on a concretely executed
            // transition — real evidence even if the walk truncated.
            Some(v) => (
                Status::Killed,
                format!("refinement broken on some schedule: {v}"),
                report.stats,
            ),
            None if report.stats.completeness.is_truncated() => (
                Status::Unknown,
                format!(
                    "refinement walk truncated after {} states; no verdict",
                    report.stats.states
                ),
                report.stats,
            ),
            None => (
                Status::Survived,
                format!(
                    "every explored transition refines the abstract machine \
                     ({} states)",
                    report.stats.states
                ),
                report.stats,
            ),
        },
    }
}

/// The bugged `Completeness::merge` of [`DegradationVariant::ExhaustiveMergeWins`]:
/// the last stage wins instead of truncation being sticky.
fn bugged_merge(_acc: Completeness, last: Completeness) -> Completeness {
    last
}

fn run_degradation(
    variant: DegradationVariant,
    cfg: &CampaignConfig,
) -> (Status, String, ExploreStats) {
    // A deliberately starved wDRF check over a real kernel example: the
    // sound pipeline must report Unknown here. Each variant then replays
    // one degradation rule with its guard removed on the same run and is
    // killed iff the bugged rule reaches a different verdict.
    let ex = paper_examples::example1();
    let prog = ex.fixed.expect("example1 has a fixed variant");
    let spec = KernelSpec::for_kernel_threads(0..prog.threads.len());
    let mut wcfg = WdrfCheckConfig {
        skip_sync_conditions: true,
        jobs: cfg.jobs,
        ..Default::default()
    };
    wcfg.promising.max_promises_per_thread = 1;
    wcfg.promising.value_cfg.max_rounds = 3;
    wcfg.promising.max_states = 4;
    wcfg.sc.max_states = 4;
    let v = match check_wdrf(&prog, &spec, &wcfg) {
        Err(e) => return (Status::Timeout, e.to_string(), ExploreStats::default()),
        Ok(v) => v,
    };
    let sound = v.verdict();
    if !sound.is_unknown() {
        // The starvation budget no longer bites; that is a harness bug,
        // and surviving here makes the 100%-kill gate surface it.
        return (
            Status::Survived,
            format!("harness error: starved check still reported {sound}"),
            v.stats,
        );
    }
    let (killed, detail) = match variant {
        DegradationVariant::IgnoreTruncation => {
            let bugged = if v.holds() {
                Verdict::Pass
            } else {
                Verdict::Fail
            };
            (
                bugged != sound,
                format!("guardless from_parts said {bugged}; sound verdict {sound}"),
            )
        }
        DegradationVariant::ExhaustiveMergeWins => {
            // Fold a final exhaustive stage (e.g. the cheap condition
            // sweep) into this run's completeness with the bugged merge,
            // then rederive the verdict the way the checker would.
            let mut stats = v.stats;
            stats.completeness = bugged_merge(stats.completeness, Completeness::Exhaustive);
            let bugged = Verdict::from_parts(v.holds(), &stats);
            (
                bugged != sound,
                format!("last-stage-wins merge rederived {bugged}; sound verdict {sound}"),
            )
        }
        DegradationVariant::UnknownExitsZero => {
            let bugged_exit = match sound {
                Verdict::Fail => 1,
                // Unknown collapsed onto the success path.
                _ => 0,
            };
            (
                bugged_exit != sound.exit_code(),
                format!(
                    "bugged exit-code map returned {bugged_exit}; sound map {}",
                    sound.exit_code()
                ),
            )
        }
    };
    let status = if killed {
        Status::Killed
    } else {
        Status::Survived
    };
    (status, detail, v.stats)
}

fn run_reduction(variant: ReductionVariant) -> (Status, String, ExploreStats) {
    use vrm_memmodel::sc::{
        enumerate_sc_all_symmetric, enumerate_sc_sleepless, enumerate_sc_with, ScConfig,
    };
    // Each variant replays one reduction rule with its guard removed on
    // a battery test chosen to make the bug observable: a test whose
    // interleaving count the bench anchors pin (sleep sets), or one
    // whose forbidden outcome a fake symmetry manufactures (orbits).
    // jobs is pinned to 1 so the popped counts are the deterministic
    // sequential-driver numbers the anchors record.
    let sc_cfg = ScConfig {
        jobs: 1,
        ..ScConfig::default()
    };
    match variant {
        ReductionVariant::SleepSetNeverBlocks => {
            let test = battery_test("ISA2+dmb+addrs");
            let sound = match enumerate_sc_with(&test.program, &sc_cfg) {
                Err(e) => return (Status::Timeout, e.to_string(), ExploreStats::default()),
                Ok(s) => s,
            };
            let bugged = match enumerate_sc_sleepless(&test.program, &sc_cfg) {
                Err(e) => return (Status::Timeout, e.to_string(), ExploreStats::default()),
                Ok(s) => s,
            };
            if bugged != sound {
                // The sleepless walk is exhaustive, so an outcome
                // difference means the *sound* driver over-pruned; that
                // is an engine bug, and surviving here surfaces it
                // through the 100%-kill gate.
                return (
                    Status::Survived,
                    "harness error: sleepless walk changed the outcome set".to_string(),
                    sound.stats,
                );
            }
            let killed = bugged.stats.popped != sound.stats.popped;
            let detail = format!(
                "sleepless walk popped {} states; sound sleep-set walk popped {} \
                 (the count BENCH_explore.json anchors)",
                bugged.stats.popped, sound.stats.popped
            );
            let status = if killed {
                Status::Killed
            } else {
                Status::Survived
            };
            (status, detail, sound.stats)
        }
        ReductionVariant::CanonIdentity => {
            let test = battery_test("SB+rel+acq");
            let sound = match enumerate_sc_with(&test.program, &sc_cfg) {
                Err(e) => return (Status::Timeout, e.to_string(), ExploreStats::default()),
                Ok(s) => s,
            };
            let bugged = match enumerate_sc_all_symmetric(&test.program, &sc_cfg) {
                Err(e) => return (Status::Timeout, e.to_string(), ExploreStats::default()),
                Ok(s) => s,
            };
            // SB+rel+acq forbids its condition under SC; the fake
            // all-threads orbit merges the two differently-fenced
            // threads and manufactures exactly that outcome.
            let sound_hit = sound.contains_binding(&test.condition);
            let bugged_hit = bugged.contains_binding(&test.condition);
            let killed = sound_hit != bugged_hit;
            let detail = format!(
                "condition {} under the fake all-symmetric orbit map; sound SC walk says {}",
                if bugged_hit {
                    "reachable"
                } else {
                    "unreachable"
                },
                if sound_hit {
                    "reachable"
                } else {
                    "unreachable"
                },
            );
            let status = if killed {
                Status::Killed
            } else {
                Status::Survived
            };
            (status, detail, sound.stats)
        }
    }
}

/// One submit→verdict probe against an in-process daemon: result of a
/// small-budget schedules query followed by a large-budget re-query of
/// the same workload.
struct ServeProbe {
    second: vrm_serve::JobResult,
    second_cached: bool,
}

/// Drives one daemon (sound or bugged) through the query sequence both
/// serve mutants are judged on: an under-budgeted `schedules/unmap`
/// walk, then a re-query at a *still insufficient* budget with
/// `escalate` — the re-query can only finish through the escalation
/// lane, so both the cache key and the checkpoint handoff are
/// genuinely on the answer path.
fn serve_probe(
    scfg: vrm_serve::ServeConfig,
    small: usize,
    second: usize,
) -> Result<ServeProbe, String> {
    use vrm_serve::{JobConfig, JobSpec, SubmitOutcome};
    let svc = vrm_serve::Service::start(scfg);
    let spec = JobSpec::Schedules {
        workload: "unmap".into(),
    };
    let submit_wait = |svc: &vrm_serve::Service,
                       cfg: JobConfig|
     -> Result<(vrm_serve::JobResult, bool), String> {
        match svc.submit(spec.clone(), cfg)? {
            SubmitOutcome::Cached { result, .. } => Ok((result, true)),
            SubmitOutcome::Queued(id) => {
                let snap = svc.wait(id);
                snap.result
                    .expect("done job has a result")
                    .map(|r| (r, false))
            }
        }
    };
    let first = JobConfig {
        max_states: small,
        jobs: 1,
        escalate: false,
    };
    let (_, _) = submit_wait(&svc, first)?;
    let second_cfg = JobConfig {
        max_states: second,
        jobs: 1,
        escalate: true,
    };
    let (second, second_cached) = submit_wait(&svc, second_cfg)?;
    svc.shutdown();
    Ok(ServeProbe {
        second,
        second_cached,
    })
}

fn run_serve(variant: ServeVariant, _cfg: &CampaignConfig) -> (Status, String, ExploreStats) {
    use vrm_serve::ServeConfig;
    match variant {
        ServeVariant::SupervisorIgnoresDeadline => return run_serve_supervisor(),
        ServeVariant::WalSkipsChecksum => return run_serve_wal(),
        ServeVariant::StaleAfterConfigChange | ServeVariant::EscalationDropsCheckpoint => {}
    }
    // Both budgets are below the unmap walk's 117 states, so the
    // re-query must travel the escalation lane (doubling to 120) to
    // reach its Pass.
    let small = 40;
    let second = 60;
    let base = ServeConfig {
        workers: 1,
        ..Default::default()
    };
    let bugged_cfg = match variant {
        ServeVariant::StaleAfterConfigChange => ServeConfig {
            digest_includes_config: false,
            ..base.clone()
        },
        ServeVariant::EscalationDropsCheckpoint => ServeConfig {
            reuse_checkpoints: false,
            ..base.clone()
        },
        _ => unreachable!("dispatched above"),
    };
    let sound = match serve_probe(base, small, second) {
        Ok(p) => p,
        Err(e) => return (Status::Timeout, e, ExploreStats::default()),
    };
    let bugged = match serve_probe(bugged_cfg, small, second) {
        Ok(p) => p,
        Err(e) => return (Status::Timeout, e, ExploreStats::default()),
    };
    let mut stats = ExploreStats {
        states: sound.second.states + bugged.second.states,
        jobs: 1,
        completeness: Completeness::Exhaustive,
        ..Default::default()
    };
    // The sound daemon must finish the walk fresh on the re-query; if
    // it cannot, the harness budget is wrong and the gate must trip.
    if sound.second_cached || !sound.second.verdict.is_pass() {
        stats.completeness = Completeness::default();
        return (
            Status::Unknown,
            format!(
                "harness error: sound daemon answered {:?} (cached:{}) on the re-query",
                sound.second.verdict, sound.second_cached
            ),
            stats,
        );
    }
    let (killed, detail) = match variant {
        ServeVariant::StaleAfterConfigChange => (
            bugged.second_cached && bugged.second.verdict.is_unknown(),
            format!(
                "bugged daemon re-query: cached:{} verdict {:?}; sound: fresh {:?}",
                bugged.second_cached, bugged.second.verdict, sound.second.verdict
            ),
        ),
        ServeVariant::EscalationDropsCheckpoint => (
            !bugged.second.resumed
                && bugged.second.states_new > bugged.second.states
                && sound.second.resumed
                && sound.second.states_new <= sound.second.states,
            format!(
                "bugged daemon: resumed:{} states_new:{}/{}; sound: resumed:{} states_new:{}/{}",
                bugged.second.resumed,
                bugged.second.states_new,
                bugged.second.states,
                sound.second.resumed,
                sound.second.states_new,
                sound.second.states
            ),
        ),
        _ => unreachable!("dispatched above"),
    };
    let status = if killed {
        Status::Killed
    } else {
        Status::Survived
    };
    (status, detail, stats)
}

/// `serve-supervisor-ignores-deadline`: both supervisors are handed a
/// worker that sleeps for 2 s against a 100 ms deadline. The sound one
/// SIGKILLs at deadline+grace and degrades to `Unknown{WorkerLost}`
/// well inside a second; the bugged one waits out the whole sleep —
/// the hung-daemon outage the deadline exists to prevent — and is
/// killed on its wall clock crossing the sleep.
fn run_serve_supervisor() -> (Status, String, ExploreStats) {
    use vrm_serve::supervisor::{execute_isolated, WorkerIsolation};
    use vrm_serve::{JobConfig, JobSpec};
    let stats = ExploreStats {
        jobs: 1,
        completeness: Completeness::Exhaustive,
        ..Default::default()
    };
    if std::env::var_os("VRM_FAULT_SEED").is_some() {
        // An injected WorkerKill turns the hang into a fast crash on
        // either side and voids the timing oracle.
        return (
            Status::Unknown,
            "fault injection armed; supervisor timing oracle is void".into(),
            stats,
        );
    }
    let iso = |ignore_deadline| WorkerIsolation {
        worker_cmd: vec!["sh".into(), "-c".into(), "sleep 2".into()],
        deadline: Duration::from_millis(100),
        grace: Duration::from_millis(50),
        restarts: 0,
        backoff_base: Duration::from_millis(5),
        ignore_deadline,
    };
    let spec = JobSpec::Schedules {
        workload: "unmap".into(),
    };
    let run = |ignore: bool| {
        let t = Instant::now();
        let res = execute_isolated(&iso(ignore), &spec, &JobConfig::default(), None);
        (res, t.elapsed())
    };
    let (sound, sound_t) = run(false);
    let lost = |r: &Result<(vrm_serve::JobResult, Option<Vec<u8>>), String>| {
        matches!(
            r,
            Ok((res, _)) if matches!(
                res.verdict,
                Verdict::Unknown { coverage } if coverage.reason == vrm_explore::TruncationReason::WorkerLost
            )
        )
    };
    if !lost(&sound) || sound_t >= Duration::from_secs(1) {
        return (
            Status::Unknown,
            format!("harness error: sound supervisor took {sound_t:?} and answered {sound:?}"),
            stats,
        );
    }
    let (bugged, bugged_t) = run(true);
    let killed = lost(&bugged) && bugged_t >= Duration::from_millis(1500);
    let status = if killed {
        Status::Killed
    } else {
        Status::Survived
    };
    (
        status,
        format!(
            "sound supervisor killed the hung worker in {sound_t:?}; \
             bugged supervisor returned after {bugged_t:?}"
        ),
        stats,
    )
}

/// `serve-wal-skips-checksum`: one verdict record is written, one
/// payload byte is flipped (the detail's `outcomes:3` → `outcomes:2` —
/// still structurally decodable, just wrong). Sound replay rejects the
/// record on its checksum and skips it; the bugged replay resurrects
/// the corrupted verdict as if intact.
fn run_serve_wal() -> (Status, String, ExploreStats) {
    use vrm_serve::store::{self, WalRecord, WAL_MAGIC};
    use vrm_serve::{CacheEntry, StoreOptions};
    let stats = ExploreStats {
        jobs: 1,
        completeness: Completeness::Exhaustive,
        ..Default::default()
    };
    let rec = WalRecord::Verdict {
        digest: 0xfeed_face_cafe_f00d,
        entry: CacheEntry {
            verdict: Verdict::Pass,
            states: 117,
            wall_ns: 1,
            detail: "outcomes:3".into(),
        },
    };
    let body = store::encode_record(&rec);
    let mut intact = WAL_MAGIC.to_vec();
    intact.extend_from_slice(&body);
    let sound_opts = StoreOptions::default();
    let (clean, _) = store::replay(&intact, &sound_opts);
    if clean.records.as_slice() != [rec.clone()] || clean.skipped != 0 {
        return (
            Status::Unknown,
            format!("harness error: intact record did not round-trip: {clean:?}"),
            stats,
        );
    }
    // Flip the last payload byte (the final detail character), leaving
    // the 8-byte checksum that follows it untouched.
    let mut torn = intact.clone();
    let n = torn.len();
    torn[n - 9] ^= 0x01;
    let (sound, _) = store::replay(&torn, &sound_opts);
    let bugged_opts = StoreOptions {
        verify_checksums: false,
        ..Default::default()
    };
    let (bugged, _) = store::replay(&torn, &bugged_opts);
    let killed = sound.records.is_empty()
        && sound.skipped == 1
        && bugged.records.len() == 1
        && bugged.records[0] != rec;
    let status = if killed {
        Status::Killed
    } else {
        Status::Survived
    };
    (
        status,
        format!(
            "sound replay skipped {} record(s) and kept {}; \
             bugged replay kept {} (corrupted: {})",
            sound.skipped,
            sound.records.len(),
            bugged.records.len(),
            bugged.records.first().map(|r| r != &rec).unwrap_or(false)
        ),
        stats,
    )
}

/// Enumerates one generated program under both reference models and
/// reports whether it exhibits a relaxed-only outcome (`None` when a
/// budget truncated either walk, in which case the comparison proves
/// nothing either way).
fn relaxed_signal(
    parsed: &vrm_memmodel::parser::ParsedLitmus,
    jobs: usize,
    stats: &mut ExploreStats,
) -> Result<Option<bool>, String> {
    use vrm_memmodel::promising::enumerate_promising_with;
    use vrm_memmodel::sc::{enumerate_sc_with, ScConfig};
    let sc_cfg = ScConfig {
        jobs,
        max_states: 1 << 16,
        ..ScConfig::default()
    };
    let mut pm_cfg = parsed.promising.clone();
    pm_cfg.jobs = jobs;
    pm_cfg.max_states = 1 << 16;
    let sc = enumerate_sc_with(&parsed.program, &sc_cfg).map_err(|e| e.to_string())?;
    let rm = enumerate_promising_with(&parsed.program, &pm_cfg).map_err(|e| e.to_string())?;
    stats.absorb(&sc.stats);
    stats.absorb(&rm.outcomes.stats);
    if sc.truncated() || rm.truncated {
        return Ok(None);
    }
    Ok(Some(rm.outcomes.len() > sc.len()))
}

fn run_gen(variant: GenVariant, cfg: &CampaignConfig) -> (Status, String, ExploreStats) {
    use vrm_memmodel::gen::{
        render, sample_cycle, shrink, CommEdge, CycleShape, GenConfig, Link, ThreadShape,
    };
    let mut stats = ExploreStats::default();
    let jobs = cfg.jobs;
    // 2-thread shapes keep both probes exhaustive (hundreds of states)
    // even unoptimized, so the kill never hides behind a truncation.
    let sound_cfg = GenConfig {
        max_threads: 2,
        ..Default::default()
    };
    match variant {
        GenVariant::PoCycleFree => {
            // The differential fuzzer's reason to exist: over a fixed
            // seed window the sound generator must produce at least one
            // program with a relaxed-only outcome. The bugged generator
            // (no closed cycle) must produce none — a corpus that can
            // never disagree with SC.
            let bugged_cfg = GenConfig {
                po_cycle_free: true,
                ..sound_cfg
            };
            let mut sound_hits = 0usize;
            let mut bugged_hits = 0usize;
            for seed in 0..24u64 {
                for (gc, hits) in [
                    (&sound_cfg, &mut sound_hits),
                    (&bugged_cfg, &mut bugged_hits),
                ] {
                    let parsed = render(&sample_cycle(seed, gc), gc);
                    match relaxed_signal(&parsed, jobs, &mut stats) {
                        Err(e) => return (Status::Timeout, e, stats),
                        Ok(None) => {
                            return (
                                Status::Unknown,
                                format!("seed {seed}: enumeration truncated; no verdict"),
                                stats,
                            )
                        }
                        Ok(Some(true)) => *hits += 1,
                        Ok(Some(false)) => {}
                    }
                }
            }
            if sound_hits == 0 {
                // The seed window no longer reaches a relaxed shape;
                // that is a harness bug and the gate must surface it.
                return (
                    Status::Survived,
                    "harness error: sound generator found no relaxed witness".to_string(),
                    stats,
                );
            }
            let killed = bugged_hits == 0;
            let detail = format!(
                "sound generator: {sound_hits}/24 seeds with relaxed-only outcomes; \
                 cycle-free generator: {bugged_hits}/24"
            );
            let status = if killed {
                Status::Killed
            } else {
                Status::Survived
            };
            (status, detail, stats)
        }
        GenVariant::ShrinkerSkipsRecheck => {
            // A fully fenced SB: both dmbs are load-bearing, so the
            // property "the relaxed outcome is absent" holds at the
            // start and fails the moment any fence is weakened. The
            // sound shrinker must reject every candidate; the bugged
            // one accepts blindly and hands back a shape that lost the
            // property it was minimizing under.
            let start = CycleShape {
                edges: vec![CommEdge::Fr, CommEdge::Fr],
                threads: vec![
                    ThreadShape {
                        link: Link::DmbSy,
                        first_acq: false,
                        second_rel: false,
                    };
                    2
                ],
                seed: 0,
            };
            let bugged_cfg = GenConfig {
                recheck_shrinks: false,
                ..sound_cfg
            };
            let mut check = |shape: &CycleShape, gc: &GenConfig| {
                relaxed_signal(&render(shape, gc), jobs, &mut stats).map(|r| r.map(|rx| !rx))
            };
            // Harness guards: the property must hold on the start shape
            // and genuinely depend on the fences.
            let forbidden_at_start = match check(&start, &sound_cfg) {
                Err(e) => return (Status::Timeout, e, stats),
                Ok(None) => {
                    return (
                        Status::Unknown,
                        "start shape enumeration truncated".to_string(),
                        stats,
                    )
                }
                Ok(Some(f)) => f,
            };
            if !forbidden_at_start {
                return (
                    Status::Survived,
                    "harness error: fenced SB already shows relaxed outcomes".to_string(),
                    stats,
                );
            }
            let property = |p: &vrm_memmodel::parser::ParsedLitmus| {
                let mut local = ExploreStats::default();
                relaxed_signal(p, jobs, &mut local) == Ok(Some(false))
            };
            let sound_min = shrink(&start, &sound_cfg, property);
            let bugged_min = shrink(&start, &bugged_cfg, property);
            let sound_holds = match check(&sound_min, &sound_cfg) {
                Err(e) => return (Status::Timeout, e, stats),
                Ok(None) => {
                    return (
                        Status::Unknown,
                        "shrunk shape enumeration truncated".to_string(),
                        stats,
                    )
                }
                Ok(Some(f)) => f,
            };
            let bugged_holds = match check(&bugged_min, &bugged_cfg) {
                Err(e) => return (Status::Timeout, e, stats),
                Ok(None) => {
                    return (
                        Status::Unknown,
                        "shrunk shape enumeration truncated".to_string(),
                        stats,
                    )
                }
                Ok(Some(f)) => f,
            };
            let killed = sound_holds && !bugged_holds;
            let detail = format!(
                "sound shrink kept the forbidden-outcome property: {sound_holds}; \
                 recheck-free shrink kept it: {bugged_holds}"
            );
            let status = if killed {
                Status::Killed
            } else {
                Status::Survived
            };
            (status, detail, stats)
        }
    }
}

/// Runs every spec and aggregates the report.
pub fn run(specs: &[MutantSpec], cfg: &CampaignConfig) -> CampaignReport {
    let mut results = Vec::with_capacity(specs.len());
    let mut stats = ExploreStats::default();
    let mut wall = 0u64;
    for spec in specs {
        let r = run_one(spec, cfg);
        wall += r.stats.wall_ns;
        stats.absorb(&r.stats);
        results.push(r);
    }
    // `absorb` keeps the max wall time (concurrent semantics); the
    // campaign runs mutants sequentially, so sum instead.
    stats.wall_ns = wall;
    CampaignReport { results, stats }
}

/// Picks the battery test named `name`.
fn battery_test(name: &str) -> LitmusTest {
    battery()
        .into_iter()
        .find(|t| t.name() == name)
        .unwrap_or_else(|| panic!("battery test `{name}` missing"))
}

/// The first site of `kind` in thread `tid` (panics if the subject
/// changed shape — the campaign must be updated alongside the corpus).
fn pick(prog: &Program, kind: MutationKind, tid: usize) -> Mutation {
    find_sites(prog)
        .into_iter()
        .find(|m| m.kind == kind && m.tid == tid)
        .unwrap_or_else(|| panic!("{} has no {kind} site in thread {tid}", prog.name))
}

/// Like [`pick`] but at an exact pc.
fn pick_at(prog: &Program, kind: MutationKind, tid: usize, pc: usize) -> Mutation {
    find_sites(prog)
        .into_iter()
        .find(|m| m.kind == kind && m.tid == tid && m.pc == pc)
        .unwrap_or_else(|| panic!("{} has no {kind} site at T{tid}@{pc}", prog.name))
}

/// The shipped campaign: every entry must be killed (enforced by
/// `tests/mutation_campaign.rs` and CI).
pub fn curated() -> Vec<MutantSpec> {
    let mut specs = Vec::new();

    // --- Litmus layer ----------------------------------------------------
    let lit = |name: &str, test_name: &str, kind, tid| {
        let test = battery_test(test_name);
        let m = pick(&test.program, kind, tid);
        MutantSpec::litmus(name, test, vec![m])
    };
    specs.push(lit(
        "sb-dmbs-delete-fence",
        "SB+dmbs",
        MutationKind::DeleteFence,
        0,
    ));
    specs.push(lit(
        "sb-dmbs-demote-fence",
        "SB+dmbs",
        MutationKind::DemoteFence,
        1,
    ));
    specs.push(lit(
        "mp-rel-acq-drop-acquire",
        "MP+rel+acq",
        MutationKind::DropAcquire,
        1,
    ));
    specs.push(lit(
        "mp-rel-acq-drop-release",
        "MP+rel+acq",
        MutationKind::DropRelease,
        0,
    ));
    specs.push(lit(
        "mp-dmb-addr-drop-addr-dep",
        "MP+dmb+addr",
        MutationKind::DropAddrDep,
        1,
    ));
    specs.push(lit(
        "wrc-addrs-drop-addr-dep",
        "WRC+addrs",
        MutationKind::DropAddrDep,
        2,
    ));
    specs.push(lit(
        "mp-ctrl-isb-drop-ctrl-dep",
        "MP+dmb+ctrl-isb",
        MutationKind::DropCtrlDep,
        1,
    ));
    specs.push(lit(
        "mp-ctrl-isb-delete-isb",
        "MP+dmb+ctrl-isb",
        MutationKind::DeleteFence,
        1,
    ));
    specs.push(lit(
        "mp-rel-rmw-drop-acquire",
        "MP+rel+rmw.acq",
        MutationKind::DropAcquire,
        1,
    ));
    specs.push(lit(
        "mp-rel-rmw-weaken-rmw",
        "MP+rel+rmw.acq",
        MutationKind::WeakenRmw,
        1,
    ));
    specs.push(lit(
        "lb-acqs-drop-acquire",
        "LB+acqs",
        MutationKind::DropAcquire,
        0,
    ));
    specs.push(lit(
        "ex-atomic-weaken-exclusive",
        "EX-atomic-inc",
        MutationKind::WeakenExclusive,
        0,
    ));
    specs.push(lit(
        "mp-stlxr-drop-release",
        "MP+stlxr+ldaxr",
        MutationKind::DropRelease,
        0,
    ));
    specs.push(lit(
        "r-dmbs-delete-fence",
        "R+dmbs",
        MutationKind::DeleteFence,
        1,
    ));
    specs.push(lit(
        "2+2w-dmbs-delete-fence",
        "2+2W+dmbs",
        MutationKind::DeleteFence,
        0,
    ));

    // --- Kernel layer ----------------------------------------------------
    {
        // Example 1: deleting CPU 1's dmb re-enables the out-of-order
        // write (CPU 2 keeps its data dependency, so only this side's
        // fence is load-bearing).
        let ex = paper_examples::example1();
        let fixed = ex.fixed.expect("example1 has a fixed variant");
        let spec = KernelSpec::for_kernel_threads(0..fixed.threads.len());
        let m = pick(&fixed, MutationKind::DeleteFence, 0);
        specs.push(MutantSpec::wdrf("ex1-delete-fence", fixed, spec, vec![m]));
    }
    {
        let ex = paper_examples::example3();
        let fixed = ex.fixed.expect("example3 has a fixed variant");
        let spec = KernelSpec::for_kernel_threads(0..fixed.threads.len());
        let m = pick(&fixed, MutationKind::DropRelease, 0);
        specs.push(MutantSpec::wdrf(
            "ex3-drop-release",
            fixed.clone(),
            spec.clone(),
            vec![m],
        ));
        let m = pick(&fixed, MutationKind::DropAcquire, 1);
        specs.push(MutantSpec::wdrf("ex3-drop-acquire", fixed, spec, vec![m]));
    }
    {
        // Figure 7 ticket lock: condition 1/2 oracles on the push/pull
        // model. The spin load's acquire justifies the pull, the unlock
        // store's release justifies the push; the ticket-draw RMW's
        // atomicity keeps tickets unique.
        let lock = paper_examples::gen_vmid_program(true);
        let mut spec = KernelSpec::for_kernel_threads([0, 1]);
        spec.shared_data = [0x12].into();
        // The acquire ghost-flag is thread-sticky, so the whole acquire
        // path (ticket-draw RMW and spin load) must lose its barriers
        // before the pull goes uncovered.
        let m0 = pick_at(&lock, MutationKind::DropAcquire, 0, 0);
        let m1 = pick_at(&lock, MutationKind::DropAcquire, 0, 1);
        specs.push(MutantSpec::pushpull(
            "ticket-lock-drop-acquire",
            lock.clone(),
            spec.clone(),
            vec![m0, m1],
        ));
        let m = pick(&lock, MutationKind::DropRelease, 0);
        specs.push(MutantSpec::pushpull(
            "ticket-lock-drop-release",
            lock.clone(),
            spec.clone(),
            vec![m],
        ));
        let m = pick(&lock, MutationKind::WeakenRmw, 0);
        specs.push(MutantSpec::pushpull(
            "ticket-lock-weaken-rmw",
            lock,
            spec,
            vec![m],
        ));
    }

    // --- Machine + Spec layers -------------------------------------------
    // The `vrm-sekvm` suite carries its own oracle expectations: log and
    // invariant mutants land in the Machine layer, refinement mutants
    // (broken forward simulation) in the Spec layer.
    for mutant in vrm_sekvm::mutants::all() {
        specs.push(MutantSpec::machine(&mutant));
    }

    // --- Engine layer ----------------------------------------------------
    // The degradation machinery itself: a survivor here would mean a
    // truncated exploration can launder into a definite verdict.
    specs.push(MutantSpec::degradation(
        "degrade-ignore-truncation",
        DegradationVariant::IgnoreTruncation,
    ));
    specs.push(MutantSpec::degradation(
        "degrade-exhaustive-merge",
        DegradationVariant::ExhaustiveMergeWins,
    ));
    specs.push(MutantSpec::degradation(
        "degrade-unknown-as-pass",
        DegradationVariant::UnknownExitsZero,
    ));
    // The state-space reduction machinery (`docs/REDUCTION.md`): a
    // survivor here would mean a broken sleep set could drift the walk
    // off its bench anchors unnoticed, or a wrong symmetry could prune
    // real behaviours and flip a verdict.
    specs.push(MutantSpec::reduction(
        "dpor-sleep-set-never-blocks",
        ReductionVariant::SleepSetNeverBlocks,
    ));
    specs.push(MutantSpec::reduction(
        "canon-identity",
        ReductionVariant::CanonIdentity,
    ));

    // --- Serve layer -----------------------------------------------------
    // The daemon's caching discipline: a survivor here would mean a
    // cached verdict can outlive the config that produced it, or an
    // escalation can silently discard paid-for exploration.
    specs.push(MutantSpec::serve(
        "serve-stale-verdict-after-config-change",
        ServeVariant::StaleAfterConfigChange,
    ));
    specs.push(MutantSpec::serve(
        "serve-escalation-drops-checkpoint",
        ServeVariant::EscalationDropsCheckpoint,
    ));
    // The daemon's crash-safety discipline: a survivor here would mean
    // a hung worker can wedge the daemon past its deadline, or a
    // corrupted WAL record can resurrect a wrong verdict on restart.
    // The supervisor oracle spawns real worker processes, so it is the
    // one campaign entry that cannot run under VRM_FAULT_SEED (an
    // injected WorkerKill collapses both sides of its timing
    // comparison); the fault-injection CI lane runs the campaign with
    // faults armed, so the entry is withheld there rather than counted
    // as a spurious non-kill.
    if std::env::var_os("VRM_FAULT_SEED").is_none() {
        specs.push(MutantSpec::serve(
            "serve-supervisor-ignores-deadline",
            ServeVariant::SupervisorIgnoresDeadline,
        ));
    }
    specs.push(MutantSpec::serve(
        "serve-wal-skips-checksum",
        ServeVariant::WalSkipsChecksum,
    ));

    // --- Gen layer -------------------------------------------------------
    // The generator feeding the differential fuzzer: a survivor here
    // would mean the standing fuzz job could keep passing while unable
    // to produce — or preserve — a counterexample.
    specs.push(MutantSpec::generator(
        "gen-po-cycle-free",
        GenVariant::PoCycleFree,
    ));
    specs.push(MutantSpec::generator(
        "gen-shrinker-skips-recheck",
        GenVariant::ShrinkerSkipsRecheck,
    ));

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_names_are_unique_and_cover_all_layers() {
        let specs = curated();
        let names: std::collections::BTreeSet<_> = specs.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), specs.len(), "duplicate mutant names");
        for layer in [
            Layer::Litmus,
            Layer::Kernel,
            Layer::Machine,
            Layer::Spec,
            Layer::Engine,
            Layer::Serve,
            Layer::Gen,
        ] {
            assert!(
                specs.iter().any(|s| s.layer == layer),
                "no mutants in {layer:?}"
            );
        }
        assert!(specs.len() >= 20, "campaign too small: {}", specs.len());
    }

    #[test]
    fn spec_refinement_mutant_is_killed() {
        // The data-oracle end of the refinement check: a skipped scrub
        // makes the Reclaim label's `scrubbed` claim false, so the
        // abstract Reclaim step is illegal.
        let cfg = CampaignConfig {
            jobs: 1,
            ..Default::default()
        };
        let kcfg = KCoreConfig {
            skip_scrub_on_reclaim: true,
            ..Default::default()
        };
        let (status, detail, _) = run_machine_refinement(kcfg, &cfg);
        assert_eq!(status, Status::Killed, "{detail}");
        assert!(detail.contains("refinement broken"), "{detail}");
        // And the unmutated kernel refines the spec on every schedule.
        let (status, detail, _) = run_machine_refinement(KCoreConfig::default(), &cfg);
        assert_eq!(status, Status::Survived, "{detail}");
    }

    #[test]
    fn degradation_mutants_are_killed() {
        let cfg = CampaignConfig {
            jobs: 1,
            ..Default::default()
        };
        for variant in [
            DegradationVariant::IgnoreTruncation,
            DegradationVariant::ExhaustiveMergeWins,
            DegradationVariant::UnknownExitsZero,
        ] {
            let (status, detail, stats) = run_degradation(variant, &cfg);
            assert_eq!(status, Status::Killed, "{variant:?}: {detail}");
            assert!(
                stats.completeness.is_truncated(),
                "{variant:?}: the oracle run must really be truncated"
            );
        }
    }

    #[test]
    fn reduction_mutants_are_killed() {
        for variant in [
            ReductionVariant::SleepSetNeverBlocks,
            ReductionVariant::CanonIdentity,
        ] {
            let (status, detail, _) = run_reduction(variant);
            assert_eq!(status, Status::Killed, "{variant:?}: {detail}");
        }
    }

    #[test]
    fn serve_robustness_mutants_are_killed() {
        if std::env::var_os("VRM_FAULT_SEED").is_some() {
            // Injected worker kills void the supervisor timing oracle.
            return;
        }
        let cfg = CampaignConfig {
            jobs: 1,
            ..Default::default()
        };
        for variant in [
            ServeVariant::SupervisorIgnoresDeadline,
            ServeVariant::WalSkipsChecksum,
        ] {
            let (status, detail, _) = run_serve(variant, &cfg);
            assert_eq!(status, Status::Killed, "{variant:?}: {detail}");
        }
    }

    #[test]
    fn gen_mutants_are_killed() {
        let cfg = CampaignConfig {
            jobs: 1,
            ..Default::default()
        };
        for variant in [GenVariant::PoCycleFree, GenVariant::ShrinkerSkipsRecheck] {
            let (status, detail, _) = run_gen(variant, &cfg);
            assert_eq!(status, Status::Killed, "{variant:?}: {detail}");
        }
    }

    #[test]
    fn truncated_oracle_yields_unknown_not_survived() {
        // Starve a kernel-layer oracle: even though the mutated program
        // genuinely has an RM-only outcome, the truncated check must
        // refuse both kill credit and a survival claim.
        let ex = paper_examples::example1();
        let fixed = ex.fixed.expect("example1 has a fixed variant");
        let spec = KernelSpec::for_kernel_threads(0..fixed.threads.len());
        let m = pick(&fixed, MutationKind::DeleteFence, 0);
        let cfg = CampaignConfig {
            jobs: 1,
            ..Default::default()
        };
        // Re-run the wdrf oracle with a starved budget by building the
        // spec and driving run_one on a budget-starved config clone.
        let mutated = apply_all(&fixed, &[m]).expect("mutation applies");
        let mut wcfg = WdrfCheckConfig {
            skip_sync_conditions: true,
            jobs: cfg.jobs,
            ..Default::default()
        };
        wcfg.promising.max_promises_per_thread = 1;
        wcfg.promising.value_cfg.max_rounds = 3;
        wcfg.promising.max_states = 4;
        wcfg.sc.max_states = 4;
        let v = check_wdrf(&mutated, &spec, &wcfg).expect("check_wdrf");
        assert!(
            v.truncated,
            "budget must bite for this test to mean anything"
        );
        // The campaign path maps that onto Status::Unknown, which counts
        // against the kill rate.
        let report = CampaignReport {
            results: vec![MutantResult {
                name: "starved".into(),
                layer: Layer::Kernel,
                oracle: Oracle::Wdrf,
                mutation: "delete fence under starved budget".into(),
                status: Status::Unknown,
                detail: String::new(),
                stats: v.stats,
            }],
            stats: v.stats,
        };
        assert_eq!(report.unknowns(), 1);
        assert!(!report.all_killed(), "Unknown must never count as killed");
    }
}
