//! Deterministic, seed-driven fault injection for the exploration
//! engine.
//!
//! The point of the robustness layer in `vrm-explore` — worker
//! containment, partial results, checkpoint/resume — is that it keeps
//! working when things go wrong. This crate manufactures the "wrong":
//! when the `VRM_FAULT_SEED` environment variable is set, the drivers
//! poll [`poll`] at their yield points and occasionally receive an
//! order to panic, stall, or pretend an allocation failed. CI runs the
//! whole test suite under several pinned seeds; every test must still
//! pass, which is exactly the claim the containment machinery makes.
//!
//! Design constraints, all load-bearing:
//!
//! * **Deterministic in the seed.** Every decision is a pure function
//!   of `(seed, poll index)` via a splitmix64 mix; the only global
//!   state is one atomic poll counter. Under parallel drivers the
//!   *assignment* of poll indices to threads still races, so two runs
//!   with the same seed inject the same multiset of faults at the same
//!   density but not necessarily on the same thread — which is the
//!   interesting case for containment anyway.
//! * **Soundness-preserving.** Faults are only ever *liveness* hazards,
//!   never *safety* hazards: a worker may die or stall, but the driver
//!   must still visit every state. That is why [`Site::Sequential`]
//!   only receives [`FaultKind::Delay`] — there is no second worker to
//!   absorb a sequential walk's frontier, so killing it would turn an
//!   exhaustive result into a truncated one and flip test verdicts.
//! * **Near-zero cost when disarmed.** With `VRM_FAULT_SEED` unset,
//!   [`poll`] is one `OnceLock` load and a branch.
//!
//! The driver — not this crate — decides whether a fault is *allowed*
//! (e.g. the last surviving worker must refuse to die); this crate only
//! proposes. An injected panic carries [`InjectedPanic`] as its payload
//! so the containment handler can tell it apart from a genuine bug in a
//! model's `expand`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What the injector proposes at one yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the current worker (parallel drivers only). The panic
    /// payload is [`InjectedPanic`].
    WorkerPanic,
    /// Stall briefly, perturbing schedules and steal patterns.
    Delay,
    /// Pretend an allocation failed: the worker retires gracefully,
    /// handing its queue to survivors (parallel drivers only).
    AllocFail,
    /// Kill a freshly spawned worker *process* (SIGKILL) before it can
    /// answer — the supervisor must convert the death into a bounded
    /// restart or a degraded `Unknown`, never a hang
    /// ([`Site::Supervisor`] only).
    WorkerKill,
    /// Fail a write-ahead-log append: the daemon must degrade to
    /// serving from memory (losing only durability, never soundness)
    /// and keep answering ([`Site::WalWrite`] only).
    WalFail,
    /// Cut a wire frame mid-write and drop the connection, so clients
    /// see a torn reply — the resilient client must reconnect and
    /// resubmit idempotently ([`Site::ServerFrame`] only).
    Disconnect,
}

/// Where in a driver the poll happens; gates which faults may fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Top of a parallel worker's loop: all fault kinds allowed.
    ParallelWorker,
    /// The sequential driver's loop: only [`FaultKind::Delay`] — the
    /// sole worker owns the whole frontier, so killing it would change
    /// results rather than merely degrade performance.
    Sequential,
    /// The serve supervisor, polled once per worker-process spawn:
    /// only [`FaultKind::WorkerKill`]. Polled far less often than the
    /// driver sites (once per job, not once per state), so it fires at
    /// [`SERVICE_FIRE_PERIOD`] instead of [`FIRE_PERIOD`].
    Supervisor,
    /// A write-ahead-log append in the serve durable store: only
    /// [`FaultKind::WalFail`]. Fires at [`SERVICE_FIRE_PERIOD`].
    WalWrite,
    /// A response-line write in the serve socket layer: only
    /// [`FaultKind::Disconnect`]. Fires at [`SERVICE_FIRE_PERIOD`].
    ServerFrame,
}

impl Site {
    /// `true` for the service-layer sites, which are polled per
    /// *job/record/frame* rather than per explored state and therefore
    /// use the denser [`SERVICE_FIRE_PERIOD`].
    fn is_service(self) -> bool {
        matches!(self, Site::Supervisor | Site::WalWrite | Site::ServerFrame)
    }
}

/// Panic payload of an injected [`FaultKind::WorkerPanic`], so the
/// engine's containment handler can distinguish injected deaths (whose
/// liveness accounting the driver settles *before* panicking) from
/// genuine `expand` bugs.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// Environment variable naming the injection seed. Unset ⇒ disarmed.
pub const SEED_ENV: &str = "VRM_FAULT_SEED";

static SEED: OnceLock<Option<u64>> = OnceLock::new();
static POLLS: AtomicU64 = AtomicU64::new(0);

/// Count of faults actually proposed (not merely polled), surfaced in
/// `vrm-obs` metrics snapshots next to the engine's own counters.
static OBS_FIRED: vrm_obs::Counter = vrm_obs::Counter::new("faults.fired");

/// The configured seed, read once from [`SEED_ENV`]; `None` disarms
/// the injector entirely.
pub fn seed() -> Option<u64> {
    *SEED.get_or_init(|| {
        std::env::var(SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    })
}

/// `true` iff a fault seed is configured.
pub fn armed() -> bool {
    seed().is_some()
}

/// splitmix64: a full-period mixer whose output is well distributed
/// even for sequential inputs (Steele, Lea & Flood's SplittableRandom
/// finalizer). Public so tests can pin decision sequences.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Roughly one poll in this many fires a fault (prime, so the firing
/// pattern never phase-locks with power-of-two loop structures).
pub const FIRE_PERIOD: u64 = 1021;

/// Fire period for the service-layer sites ([`Site::Supervisor`],
/// [`Site::WalWrite`], [`Site::ServerFrame`]). These are polled once
/// per job, WAL record, or wire frame — thousands of times less often
/// than the per-state driver sites — so a chaos run of a ~30-job
/// corpus still injects a handful of faults. Prime, for the same
/// phase-locking reason as [`FIRE_PERIOD`].
pub const SERVICE_FIRE_PERIOD: u64 = 13;

/// One yield-point poll: returns a proposed fault, or `None` (the
/// overwhelmingly common case). Pure in `(seed, poll index, site)`.
pub fn poll(site: Site) -> Option<FaultKind> {
    let seed = seed()?;
    let n = POLLS.fetch_add(1, Ordering::Relaxed);
    let fault = decide(seed, n, site);
    if let Some(kind) = fault {
        OBS_FIRED.add(1);
        // Rare path (roughly one poll in a thousand), so the trace
        // event's formatting cost is irrelevant; each injected fault
        // becomes visible in the trace next to what it disrupted.
        vrm_obs::event(
            "fault_injected",
            &[
                ("kind", format!("{kind:?}").as_str().into()),
                ("site", format!("{site:?}").as_str().into()),
                ("poll_index", n.into()),
            ],
        );
    }
    fault
}

/// The decision function behind [`poll`], split out for determinism
/// tests: seed + poll index + site → proposed fault.
pub fn decide(seed: u64, index: u64, site: Site) -> Option<FaultKind> {
    let r = splitmix64(seed ^ index.wrapping_mul(0x2545f4914f6cdd1d));
    if site.is_service() {
        // Service sites carry exactly one fault kind each, decided at
        // their own (denser) period.
        if !r.is_multiple_of(SERVICE_FIRE_PERIOD) {
            return None;
        }
        return Some(match site {
            Site::Supervisor => FaultKind::WorkerKill,
            Site::WalWrite => FaultKind::WalFail,
            _ => FaultKind::Disconnect,
        });
    }
    if !r.is_multiple_of(FIRE_PERIOD) {
        return None;
    }
    let kind = match (r / FIRE_PERIOD) % 10 {
        0..=4 => FaultKind::Delay,
        5..=7 => FaultKind::WorkerPanic,
        _ => FaultKind::AllocFail,
    };
    match (site, kind) {
        (Site::Sequential, FaultKind::Delay) => Some(FaultKind::Delay),
        (Site::Sequential, _) => None,
        _ => Some(kind),
    }
}

/// Panics the current thread with the [`InjectedPanic`] marker payload.
/// Callers must settle their liveness accounting (e.g. "am I the last
/// worker?") before calling.
pub fn inject_panic() -> ! {
    std::panic::panic_any(InjectedPanic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_seed_and_index() {
        for seed in [1u64, 42, 0xdead_beef] {
            let a: Vec<_> = (0..10_000)
                .map(|i| decide(seed, i, Site::ParallelWorker))
                .collect();
            let b: Vec<_> = (0..10_000)
                .map(|i| decide(seed, i, Site::ParallelWorker))
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fire_rate_is_rare_but_nonzero() {
        let fired = (0..100_000u64)
            .filter(|&i| decide(7, i, Site::ParallelWorker).is_some())
            .count();
        // Expected ~98 at 1/1021; generous brackets keep this stable
        // across any future mixer tweak.
        assert!(fired > 10, "injector never fires: {fired}");
        assert!(fired < 1_000, "injector fires far too often: {fired}");
    }

    #[test]
    fn sequential_site_only_sees_delays() {
        for i in 0..200_000u64 {
            match decide(99, i, Site::Sequential) {
                None | Some(FaultKind::Delay) => {}
                Some(k) => panic!("sequential site proposed {k:?} at index {i}"),
            }
        }
    }

    #[test]
    fn all_kinds_eventually_fire_in_parallel_site() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500_000u64 {
            if let Some(k) = decide(3, i, Site::ParallelWorker) {
                seen.insert(format!("{k:?}"));
            }
        }
        assert_eq!(seen.len(), 3, "kinds seen: {seen:?}");
    }

    #[test]
    fn service_sites_propose_only_their_own_kind() {
        for i in 0..50_000u64 {
            match decide(7, i, Site::Supervisor) {
                None | Some(FaultKind::WorkerKill) => {}
                Some(k) => panic!("supervisor site proposed {k:?} at index {i}"),
            }
            match decide(7, i, Site::WalWrite) {
                None | Some(FaultKind::WalFail) => {}
                Some(k) => panic!("wal site proposed {k:?} at index {i}"),
            }
            match decide(7, i, Site::ServerFrame) {
                None | Some(FaultKind::Disconnect) => {}
                Some(k) => panic!("frame site proposed {k:?} at index {i}"),
            }
        }
    }

    #[test]
    fn service_sites_fire_densely_enough_for_small_corpora() {
        // A ~30-job chaos run polls each service site ~30 times; the
        // denser period must make at least one firing likely. Pin the
        // rate bracket over a larger window so the test is stable.
        let fired = (0..10_000u64)
            .filter(|&i| decide(1021, i, Site::Supervisor).is_some())
            .count();
        // Expected ~769 at 1/13.
        assert!(fired > 200, "service sites fire too rarely: {fired}");
        assert!(fired < 2_500, "service sites fire too often: {fired}");
    }

    #[test]
    fn disarmed_injector_is_inert() {
        // The test environment must not set the seed for unit tests.
        if std::env::var(SEED_ENV).is_err() {
            assert!(!armed());
            assert_eq!(poll(Site::ParallelWorker), None);
        }
    }
}
