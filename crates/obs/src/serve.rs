//! Counter-name registry for the `vrm-serve` daemon.
//!
//! `vrm-obs` keeps zero in-workspace dependencies, so the serve layer's
//! [`Counter`](crate::Counter)s are *declared* over in `vrm-serve` —
//! but their **names** live here, next to every other counter registry
//! this crate documents, so trace consumers, tests and CI assertions
//! address them through one vocabulary instead of scattered string
//! literals. All names are `serve/`-prefixed; the full registry with
//! per-counter semantics is documented in `docs/TELEMETRY.md` and
//! `docs/SERVE.md`.
//!
//! The cache counters carry the serve subsystem's headline soundness
//! and performance claims: a corpus replay served entirely warm shows
//! `serve/cache_hit` advancing while `serve/states_explored` stands
//! still — repeat queries are O(1) and cost zero new exploration.

/// Client connections accepted (TCP or Unix domain socket).
pub const CONNECTIONS: &str = "serve/connections";
/// Request lines parsed and dispatched, across all connections.
pub const REQUESTS: &str = "serve/requests";
/// Protocol lines rejected before dispatch (unparseable or invalid).
pub const BAD_REQUESTS: &str = "serve/bad_requests";
/// Jobs answered straight from the verdict cache.
pub const CACHE_HIT: &str = "serve/cache_hit";
/// Jobs that missed the cache and were queued for exploration.
pub const CACHE_MISS: &str = "serve/cache_miss";
/// Jobs admitted to the scheduler queue.
pub const JOBS_SUBMITTED: &str = "serve/jobs_submitted";
/// Jobs completed (verdict stored, waiters notified).
pub const JOBS_COMPLETED: &str = "serve/jobs_completed";
/// Jobs whose fast-lane run came back `Unknown` and were re-run on the
/// escalation lane with doubled budgets.
pub const JOBS_ESCALATED: &str = "serve/jobs_escalated";
/// Escalated or re-queried jobs that resumed from a cached VRMCKPT1
/// checkpoint instead of restarting from scratch.
pub const CHECKPOINT_RESUME: &str = "serve/checkpoint_resume";
/// Cached checkpoints rejected as corrupt (footer or decode failure).
pub const CHECKPOINT_CORRUPT: &str = "serve/checkpoint_corrupt";
/// Parked checkpoints evicted by the store's LRU cap (the suspended
/// walk is forgotten; a later re-query restarts from scratch).
pub const CHECKPOINT_EVICTED: &str = "serve/checkpoint_evicted";
/// States explored on behalf of serve jobs (fresh exploration work;
/// stands still across a fully cache-served replay).
pub const STATES_EXPLORED: &str = "serve/states_explored";

/// Every serve counter name, for exhaustive snapshot assertions.
pub const ALL: &[&str] = &[
    CONNECTIONS,
    REQUESTS,
    BAD_REQUESTS,
    CACHE_HIT,
    CACHE_MISS,
    JOBS_SUBMITTED,
    JOBS_COMPLETED,
    JOBS_ESCALATED,
    CHECKPOINT_RESUME,
    CHECKPOINT_CORRUPT,
    CHECKPOINT_EVICTED,
    STATES_EXPLORED,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_prefixed_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(name.starts_with("serve/"), "{name}");
            assert!(seen.insert(name), "duplicate counter name {name}");
        }
    }
}
