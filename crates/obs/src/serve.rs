//! Counter-name registry for the `vrm-serve` daemon.
//!
//! `vrm-obs` keeps zero in-workspace dependencies, so the serve layer's
//! [`Counter`](crate::Counter)s are *declared* over in `vrm-serve` —
//! but their **names** live here, next to every other counter registry
//! this crate documents, so trace consumers, tests and CI assertions
//! address them through one vocabulary instead of scattered string
//! literals. All names are `serve/`-prefixed; the full registry with
//! per-counter semantics is documented in `docs/TELEMETRY.md` and
//! `docs/SERVE.md`.
//!
//! The cache counters carry the serve subsystem's headline soundness
//! and performance claims: a corpus replay served entirely warm shows
//! `serve/cache_hit` advancing while `serve/states_explored` stands
//! still — repeat queries are O(1) and cost zero new exploration.

/// Client connections accepted (TCP or Unix domain socket).
pub const CONNECTIONS: &str = "serve/connections";
/// Request lines parsed and dispatched, across all connections.
pub const REQUESTS: &str = "serve/requests";
/// Protocol lines rejected before dispatch (unparseable or invalid).
pub const BAD_REQUESTS: &str = "serve/bad_requests";
/// Jobs answered straight from the verdict cache.
pub const CACHE_HIT: &str = "serve/cache_hit";
/// Jobs that missed the cache and were queued for exploration.
pub const CACHE_MISS: &str = "serve/cache_miss";
/// Jobs admitted to the scheduler queue.
pub const JOBS_SUBMITTED: &str = "serve/jobs_submitted";
/// Jobs completed (verdict stored, waiters notified).
pub const JOBS_COMPLETED: &str = "serve/jobs_completed";
/// Jobs whose fast-lane run came back `Unknown` and were re-run on the
/// escalation lane with doubled budgets.
pub const JOBS_ESCALATED: &str = "serve/jobs_escalated";
/// Escalated or re-queried jobs that resumed from a cached VRMCKPT1
/// checkpoint instead of restarting from scratch.
pub const CHECKPOINT_RESUME: &str = "serve/checkpoint_resume";
/// Cached checkpoints rejected as corrupt (footer or decode failure).
pub const CHECKPOINT_CORRUPT: &str = "serve/checkpoint_corrupt";
/// Parked checkpoints evicted by the store's LRU cap (the suspended
/// walk is forgotten; a later re-query restarts from scratch).
pub const CHECKPOINT_EVICTED: &str = "serve/checkpoint_evicted";
/// States explored on behalf of serve jobs (fresh exploration work;
/// stands still across a fully cache-served replay).
pub const STATES_EXPLORED: &str = "serve/states_explored";
/// Cached verdicts evicted by the verdict cache's LRU cap (the verdict
/// is forgotten; a later identical query recomputes it).
pub const VERDICT_EVICTED: &str = "serve/verdict_evicted";
/// Cached `Unknown` verdicts past their staleness TTL at lookup time:
/// the entry is dropped and the query re-explores (resuming any parked
/// checkpoint) instead of serving the stale `Unknown` forever.
pub const UNKNOWN_EXPIRED: &str = "serve/unknown_expired";
/// Write-ahead-log records skipped on replay as torn or checksum-bad.
pub const WAL_CORRUPT_SKIPPED: &str = "serve/wal_corrupt_skipped";
/// Write-ahead-log appends that failed (I/O error or an injected
/// `WalFail` fault); the daemon degrades to in-memory service of that
/// record and keeps answering.
pub const WAL_WRITE_FAILED: &str = "serve/wal_write_failed";
/// Write-ahead-log compactions (live-state snapshot atomically
/// replacing the grown log).
pub const WAL_COMPACTIONS: &str = "serve/wal_compactions";
/// Entries (verdicts + checkpoints) restored from the write-ahead log
/// on daemon start.
pub const WAL_REPLAYED: &str = "serve/wal_replayed";
/// Worker processes spawned by the supervisor.
pub const WORKER_SPAWNED: &str = "serve/worker_spawned";
/// Worker processes SIGKILLed for exceeding their per-job wall-clock
/// deadline.
pub const WORKER_KILLED: &str = "serve/worker_killed";
/// Worker processes that exited without a usable answer (crash,
/// nonzero exit, unparsable output) — each is retried with backoff up
/// to the supervisor's restart bound.
pub const WORKER_CRASHED: &str = "serve/worker_crashed";
/// Jobs degraded to `Unknown{WorkerLost}` after the supervisor's kill
/// or restart budget was exhausted.
pub const WORKER_LOST: &str = "serve/worker_lost";
/// Client-side reconnect-and-resubmit attempts (idempotent retries
/// after a torn frame or dropped connection).
pub const CLIENT_RETRIES: &str = "serve/client_retries";
/// Response frames deliberately cut mid-write by the injected
/// `Disconnect` fault (chaos runs only).
pub const FRAMES_CUT: &str = "serve/frames_cut";

/// Every serve counter name, for exhaustive snapshot assertions.
pub const ALL: &[&str] = &[
    CONNECTIONS,
    REQUESTS,
    BAD_REQUESTS,
    CACHE_HIT,
    CACHE_MISS,
    JOBS_SUBMITTED,
    JOBS_COMPLETED,
    JOBS_ESCALATED,
    CHECKPOINT_RESUME,
    CHECKPOINT_CORRUPT,
    CHECKPOINT_EVICTED,
    STATES_EXPLORED,
    VERDICT_EVICTED,
    UNKNOWN_EXPIRED,
    WAL_CORRUPT_SKIPPED,
    WAL_WRITE_FAILED,
    WAL_COMPACTIONS,
    WAL_REPLAYED,
    WORKER_SPAWNED,
    WORKER_KILLED,
    WORKER_CRASHED,
    WORKER_LOST,
    CLIENT_RETRIES,
    FRAMES_CUT,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_prefixed_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(name.starts_with("serve/"), "{name}");
            assert!(seen.insert(name), "duplicate counter name {name}");
        }
    }
}
