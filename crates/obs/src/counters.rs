//! Lock-free named counters.
//!
//! A [`Counter`] is declared `static` at its point of use and costs one
//! relaxed `fetch_add` per increment after a one-time registration (a
//! `OnceLock` load on every later call). All live counters are listed
//! in a global registry so [`snapshot`] can aggregate the process-wide
//! totals into a [`MetricsSnapshot`] without knowing who declared what.
//!
//! Counters are *cumulative and monotone* over the life of the process
//! (they only ever increase), which is what makes periodic snapshots
//! subtractable: the delta between two snapshots is the work done in
//! between, regardless of how many explorations ran concurrently.
//!
//! Per-run counters (states, pops, pushes, steals of one exploration)
//! live in `ExploreStats` over in `vrm-explore`; the globals here are
//! the process-wide view a long campaign or a trace consumer wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The global registry: every registered counter's name and cell.
/// Cells are leaked `AtomicU64`s, so reads never take the lock.
static REGISTRY: Mutex<Vec<(&'static str, &'static AtomicU64)>> = Mutex::new(Vec::new());

/// A named, process-global, monotonically increasing counter.
///
/// Declare it `static`, bump it with [`Counter::add`]:
///
/// ```
/// static CERTS: vrm_obs::Counter = vrm_obs::Counter::new("promising.certifications");
/// CERTS.add(1);
/// assert!(CERTS.get() >= 1);
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Declares a counter under `name`. Registration with the global
    /// registry happens lazily on first use; two counters sharing a
    /// name share a cell.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((_, cell)) = reg.iter().find(|(n, _)| *n == self.name) {
                cell
            } else {
                let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
                reg.push((self.name, cell));
                cell
            }
        })
    }

    /// Adds `n` to the counter (relaxed; counters are statistics, not
    /// synchronization).
    pub fn add(&self, n: u64) {
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value.
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }

    /// The counter's name as given to [`Counter::new`].
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// One aggregated reading of every registered counter, plus a sequence
/// number and capture timestamp. Serialized as a `"metrics"` trace line
/// (see `docs/TELEMETRY.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone per-process snapshot sequence number (starts at 0).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch when this snapshot was
    /// taken.
    pub t_ns: u64,
    /// `(name, value)` for every registered counter, sorted by name so
    /// snapshots are diffable line-to-line.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// The value of counter `name` in this snapshot, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

static SNAPSHOT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Captures a [`MetricsSnapshot`] of every registered counter.
///
/// `t_ns` is supplied by the caller (the trace module knows the
/// process epoch) so this module stays clock-free.
pub fn snapshot(t_ns: u64) -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let mut counters: Vec<(String, u64)> = reg
        .iter()
        .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
        .collect();
    drop(reg);
    counters.sort();
    MetricsSnapshot {
        seq: SNAPSHOT_SEQ.fetch_add(1, Ordering::Relaxed),
        t_ns,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_accumulate_and_snapshot() {
        static A: Counter = Counter::new("test.counters.a");
        static B: Counter = Counter::new("test.counters.b");
        A.add(2);
        B.add(40);
        A.add(3);
        let snap = snapshot(0);
        assert!(snap.get("test.counters.a").unwrap() >= 5);
        assert!(snap.get("test.counters.b").unwrap() >= 40);
        // Monotone: a later snapshot never goes down, and seq advances.
        let later = snapshot(1);
        assert!(later.seq > snap.seq);
        for (name, v) in &snap.counters {
            assert!(later.get(name).unwrap() >= *v, "{name} went backwards");
        }
    }

    #[test]
    fn same_name_shares_a_cell() {
        static X1: Counter = Counter::new("test.counters.shared");
        static X2: Counter = Counter::new("test.counters.shared");
        let before = X1.get();
        X2.add(7);
        assert!(X1.get() >= before + 7);
    }
}
