//! Log-scaled concurrent duration histograms.
//!
//! The profiling hooks at the drivers' yield points need a histogram
//! that many workers can feed without locks and that summarizes to a
//! handful of numbers for a trace line. Buckets are powers of two of
//! nanoseconds — bucket `i` holds samples in `[2^i, 2^(i+1))` ns
//! (bucket 0 also takes 0 ns) — giving ~1.4 significant digits over
//! the full `u64` range with 64 atomic words of storage, the same
//! trade HdrHistogram-style recorders make coarser.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::ObjWriter;

/// Number of power-of-two buckets: one per bit of a `u64` duration.
pub const BUCKETS: usize = 64;

/// A lock-free histogram of durations in nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `ns`: `floor(log2 ns)`, with 0 ns in
    /// bucket 0.
    pub fn bucket_of(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Records one duration (relaxed atomics; statistics only).
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded duration, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// An upper bound on the `q`-quantile (0.0..=1.0), in nanoseconds:
    /// the top edge of the bucket where the cumulative count crosses
    /// `q` (so at most 2× the true value). 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        self.max_ns()
    }

    /// Serializes the histogram summary plus its non-empty buckets as a
    /// JSON object (the `"profile"` trace line's per-phase payload):
    /// `count`, `sum_ns`, `max_ns`, `p50_ns`, `p99_ns`, and `buckets`
    /// as a `log2 → count` object.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.field_u64("count", self.count())
            .field_u64("sum_ns", self.sum_ns())
            .field_u64("max_ns", self.max_ns())
            .field_u64("p50_ns", self.quantile_ns(0.50))
            .field_u64("p99_ns", self.quantile_ns(0.99));
        let mut buckets = ObjWriter::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.field_u64(&i.to_string(), n);
            }
        }
        w.field_raw("buckets", &buckets.finish());
        w.finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn summary_and_quantiles() {
        let h = Histogram::new();
        for ns in [10u64, 20, 30, 1000, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 101_060);
        assert_eq!(h.max_ns(), 100_000);
        // p50 falls in the bucket holding 20/30 ns ([16,32)) → edge 31.
        assert_eq!(h.quantile_ns(0.5), 31);
        assert!(h.quantile_ns(1.0) >= 100_000);
        let json = crate::json::parse(&h.to_json()).expect("histogram json parses");
        assert_eq!(json.get("count").and_then(|v| v.as_u64()), Some(5));
        assert!(json.get("buckets").and_then(|b| b.as_obj()).is_some());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.count(), 0);
    }
}
