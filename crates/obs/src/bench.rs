//! Schema-versioned perf records — the `BENCH_*.json` format.
//!
//! Every `--emit-bench` run (litmus corpus, wDRF checks, machine
//! schedule exploration) writes one [`BenchFile`]: a schema tag, the
//! suite name, and a list of flat [`BenchRecord`]s with integer
//! metrics (counts and nanoseconds). The schema is versioned so the
//! perf trajectory can accumulate across PRs and still be parsed by
//! tooling written against an older shape; field-by-field docs live in
//! `docs/TELEMETRY.md`.

use std::path::Path;

use crate::json::{counts_to_json, parse, Json, ObjWriter};

/// The schema tag written into every bench file. Bump the trailing
/// version (and document the change in `docs/TELEMETRY.md`) when the
/// shape changes incompatibly.
pub const BENCH_SCHEMA: &str = "vrm-bench/v1";

/// One measured workload: a name, string parameters (configuration
/// that identifies the run), and integer metrics (what was measured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Workload name, unique within the file (e.g. the litmus test
    /// name, `"wdrf/example1"`, `"schedules/unmap"`).
    pub name: String,
    /// Identifying parameters, e.g. `("jobs", "4")`, `("driver",
    /// "parallel")`. Values are strings so budgets like `"none"` fit.
    pub params: Vec<(String, String)>,
    /// Measured values: state counts, candidate counts, `wall_ns`
    /// wall-clock times, verdict exit codes. Counts and nanoseconds
    /// only — derived ratios belong to whoever reads the trajectory.
    pub metrics: Vec<(String, u64)>,
}

impl BenchRecord {
    /// A record with no params or metrics yet.
    pub fn new(name: impl Into<String>) -> Self {
        BenchRecord {
            name: name.into(),
            params: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds an identifying parameter (builder style). Params are kept
    /// sorted by key — the canonical order JSON round-trips preserve.
    pub fn param(mut self, key: &str, val: impl ToString) -> Self {
        let entry = (key.to_string(), val.to_string());
        let at = self.params.partition_point(|(k, _)| *k < entry.0);
        self.params.insert(at, entry);
        self
    }

    /// Adds a measured metric (builder style). Metrics are kept sorted
    /// by key — the canonical order JSON round-trips preserve.
    pub fn metric(mut self, key: &str, val: u64) -> Self {
        let entry = (key.to_string(), val);
        let at = self.metrics.partition_point(|(k, _)| *k < entry.0);
        self.metrics.insert(at, entry);
        self
    }

    /// The metric named `key`, if recorded.
    pub fn get_metric(&self, key: &str) -> Option<u64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.field_str("name", &self.name);
        let mut params = ObjWriter::new();
        for (k, v) in &self.params {
            params.field_str(k, v);
        }
        w.field_raw("params", &params.finish());
        w.field_raw("metrics", &counts_to_json(&self.metrics));
        w.finish()
    }

    fn from_json(v: &Json) -> Option<Self> {
        let name = v.get("name")?.as_str()?.to_string();
        let mut params = Vec::new();
        for (k, pv) in v.get("params")?.as_obj()? {
            params.push((k.clone(), pv.as_str()?.to_string()));
        }
        let mut metrics = Vec::new();
        for (k, mv) in v.get("metrics")?.as_obj()? {
            metrics.push((k.clone(), mv.as_u64()?));
        }
        Some(BenchRecord {
            name,
            params,
            metrics,
        })
    }
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchFile {
    /// Always [`BENCH_SCHEMA`] when written by this crate; readers
    /// must check it before interpreting records.
    pub schema: String,
    /// Which harness suite produced the file (`"explore"`, `"wdrf"`,
    /// `"schedules"`).
    pub suite: String,
    /// The measured workloads, in run order.
    pub records: Vec<BenchRecord>,
}

impl BenchFile {
    /// An empty bench file for `suite`, stamped with the current
    /// schema.
    pub fn new(suite: impl Into<String>) -> Self {
        BenchFile {
            schema: BENCH_SCHEMA.to_string(),
            suite: suite.into(),
            records: Vec::new(),
        }
    }

    /// Serializes the file as pretty-enough JSON (one record per line,
    /// so the in-repo baseline diffs readably).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut head = ObjWriter::new();
        head.field_str("schema", &self.schema)
            .field_str("suite", &self.suite);
        let head = head.finish();
        // Splice the two header fields out of their object braces.
        out.push_str("  ");
        out.push_str(&head[1..head.len() - 1]);
        out.push_str(",\n  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&r.to_json());
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document produced by [`BenchFile::to_json`], rejecting
    /// unknown schemas and malformed records.
    pub fn from_json(text: &str) -> Option<Self> {
        let v = parse(text)?;
        let schema = v.get("schema")?.as_str()?.to_string();
        if schema != BENCH_SCHEMA {
            return None;
        }
        let suite = v.get("suite")?.as_str()?.to_string();
        let mut records = Vec::new();
        for r in v.get("records")?.as_arr()? {
            records.push(BenchRecord::from_json(r)?);
        }
        Some(BenchFile {
            schema,
            suite,
            records,
        })
    }

    /// The record named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Writes the file to `path` (atomically enough for a bench
    /// artifact: full rewrite, not append).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a bench file from `path`.
    pub fn read_from(path: &Path) -> Option<Self> {
        Self::from_json(&std::fs::read_to_string(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_file_round_trips() {
        let mut f = BenchFile::new("explore");
        f.records.push(
            BenchRecord::new("mp+dmb+ctrl-isb")
                .param("jobs", 4)
                .param("budget", "none")
                .metric("sc_states", 17)
                .metric("wall_ns", 1_234_567),
        );
        f.records.push(
            BenchRecord::new("wdrf/example1")
                .param("variant", "fixed")
                .metric("states", 99)
                .metric("exit_code", 0),
        );
        let text = f.to_json();
        let back = BenchFile::from_json(&text).expect("round trip");
        assert_eq!(back, f);
        assert_eq!(
            back.get("mp+dmb+ctrl-isb").unwrap().get_metric("sc_states"),
            Some(17)
        );
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut f = BenchFile::new("explore");
        f.schema = "vrm-bench/v0".into();
        assert!(BenchFile::from_json(&f.to_json()).is_none());
    }
}
