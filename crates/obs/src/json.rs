//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace is offline (no serde), and everything we serialize —
//! trace lines, metrics snapshots, bench records — is flat and small,
//! so a few hundred lines of JSON plumbing beat a dependency. The
//! writer produces exactly the subset the parser accepts: objects,
//! arrays, strings, integers (i64/u64 range), floats, booleans and
//! null. The parser exists so the schema tests (and baseline readers)
//! can round-trip what the writer emits; it is not a general-purpose
//! validator, but it does reject trailing garbage, unterminated
//! strings, and malformed escapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers keep their integer identity when they have one: the writer
/// emits counters as integers and the schema tests compare them
/// exactly, which `f64` round-tripping would jeopardize above 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (all our counters and timestamps).
    Int(i64),
    /// An integer in `i64::MAX + 1 ..= u64::MAX` (e.g. `usize::MAX`
    /// state budgets).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so iteration (and re-serialization) is
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// This value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as an object map if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes + escapes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental writer for a single flat JSON object: call the typed
/// `field_*` methods, then [`ObjWriter::finish`]. Key order is the call
/// order; commas and escaping are handled here so call sites stay
/// readable.
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Starts a new `{`-open object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Writes a string field.
    pub fn field_str(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, val);
        self
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, val: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{val}");
        self
    }

    /// Writes a float field (finite values only; non-finite values are
    /// written as `null`, which JSON requires).
    pub fn field_f64(&mut self, key: &str, val: f64) -> &mut Self {
        self.key(key);
        if val.is_finite() {
            let _ = write!(self.buf, "{val}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, key: &str, val: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if val { "true" } else { "false" });
        self
    }

    /// Writes a pre-serialized JSON value verbatim under `key`. The
    /// caller guarantees `raw` is valid JSON (it always comes from
    /// another writer in this module).
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes `(name, count)` pairs as a JSON object with integer
/// values — the shape shared by counter snapshots and bench metrics.
pub fn counts_to_json(counts: &[(String, u64)]) -> String {
    let mut w = ObjWriter::new();
    for (k, v) in counts {
        w.field_u64(k, *v);
    }
    w.finish()
}

/// Parses one JSON document, rejecting trailing non-whitespace.
pub fn parse(text: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    Some(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn lit(&mut self, s: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.lit("true").map(|_| Json::Bool(true)),
            b'f' => self.lit("false").map(|_| Json::Bool(false)),
            b'n' => self.lit("null").map(|_| Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.bump(); // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Some(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bump()? != b':' {
                return None;
            }
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(Json::Obj(map)),
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.bump(); // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Some(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(Json::Arr(out)),
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bump()? != b'"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = self.bytes.get(self.pos..self.pos + 4)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // reject rather than mis-decode.
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                // Multi-byte UTF-8: copy raw continuation bytes through.
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return None,
                    };
                    let slice = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(slice).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if text.is_empty() || text == "-" {
            return None;
        }
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Some(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Some(Json::UInt(u));
            }
        }
        text.parse::<f64>().ok().map(Json::Float)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut w = ObjWriter::new();
        w.field_str("name", "mp+dmb+ctrl-isb \"quoted\"\n")
            .field_u64("states", 123)
            .field_u64("huge", u64::MAX)
            .field_f64("ratio", 0.5)
            .field_bool("ok", true)
            .field_raw(
                "inner",
                &counts_to_json(&[("a".into(), 1), ("b".into(), 2)]),
            );
        let text = w.finish();
        let v = parse(&text).expect("round-trip parse");
        assert_eq!(v.get("states").and_then(Json::as_u64), Some(123));
        assert_eq!(v.get("huge").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("mp+dmb+ctrl-isb \"quoted\"\n")
        );
        assert_eq!(
            v.get("inner")
                .and_then(|i| i.get("b"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "{\"a\":}", "[1,]", "\"unterminated", "12 34", "{}x"] {
            assert!(parse(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_nested_arrays_and_null() {
        let v = parse("[{\"a\": [1, 2.5, null, false]}]").unwrap();
        let arr = v.as_arr().unwrap();
        let inner = arr[0].get("a").unwrap().as_arr().unwrap();
        assert_eq!(inner[0], Json::Int(1));
        assert_eq!(inner[1], Json::Float(2.5));
        assert_eq!(inner[2], Json::Null);
        assert_eq!(inner[3], Json::Bool(false));
    }

    #[test]
    fn unicode_passthrough() {
        let mut w = ObjWriter::new();
        w.field_str("s", "RM ⊆ SC — naïve");
        let text = w.finish();
        assert_eq!(
            parse(&text).unwrap().get("s").and_then(Json::as_str),
            Some("RM ⊆ SC — naïve")
        );
    }
}
