//! The `VRM_TRACE` JSON-lines trace emitter.
//!
//! Tracing is *off by default* and costs one atomic load and a branch
//! per call site when off — the hot-path discipline every instrumented
//! loop in `vrm-explore` relies on. It turns on in one of two ways:
//!
//! * the `VRM_TRACE=<path>` environment variable: every line is
//!   appended to `<path>` (created if missing) through a buffered
//!   writer that is flushed on each line, so a killed run still leaves
//!   a readable trace;
//! * [`install_memory_sink`], which tests use to capture lines
//!   in-process without touching the filesystem or global env.
//!
//! Every line is one flat JSON object with a `"type"` discriminator
//! (`span`, `event`, `metrics`, `profile`) and a `"t_us"` timestamp in
//! microseconds since the process trace epoch (first trace activity).
//! The full field-by-field schema lives in `docs/TELEMETRY.md`.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::ObjWriter;

/// Environment variable naming the trace output path. Unset ⇒ tracing
/// disabled.
pub const TRACE_ENV: &str = "VRM_TRACE";

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Fast-path gate: `STATE_ON` iff a sink is installed.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

enum Sink {
    File(Mutex<BufWriter<std::fs::File>>),
    Memory(Mutex<Vec<String>>),
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

/// The process trace epoch: all `t_us`/`t_ns` timestamps are relative
/// to this instant (first observability activity in the process).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn init_sink() -> &'static Option<Sink> {
    SINK.get_or_init(|| {
        let path = std::env::var(TRACE_ENV).ok()?;
        let path = path.trim();
        if path.is_empty() {
            return None;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()?;
        Some(Sink::File(Mutex::new(BufWriter::new(file))))
    })
}

/// `true` iff tracing is active. This is the one branch instrumented
/// hot loops pay when tracing is off: after the first call it is a
/// single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = init_sink().is_some();
            // Pin the epoch while we are in the slow path, so the first
            // emitted timestamp is ~0 rather than process-age.
            if on {
                let _ = epoch();
            }
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Installs an in-memory sink capturing every trace line, for tests.
/// Overrides (and wins over) `VRM_TRACE`; once installed it cannot be
/// removed, only drained with [`drain_memory_sink`]. Returns `false`
/// if a sink (file or memory) was already installed.
pub fn install_memory_sink() -> bool {
    let installed = SINK.set(Some(Sink::Memory(Mutex::new(Vec::new())))).is_ok();
    if matches!(SINK.get(), Some(Some(_))) {
        let _ = epoch();
        STATE.store(STATE_ON, Ordering::Relaxed);
    }
    installed
}

/// Takes every line captured so far by the memory sink (empty when the
/// sink is a file or tracing is off).
pub fn drain_memory_sink() -> Vec<String> {
    match SINK.get() {
        Some(Some(Sink::Memory(lines))) => {
            std::mem::take(&mut *lines.lock().unwrap_or_else(|p| p.into_inner()))
        }
        _ => Vec::new(),
    }
}

/// Writes one raw line to the active sink. `line` must be a complete
/// JSON object without the trailing newline.
pub(crate) fn write_line(line: &str) {
    match SINK.get() {
        Some(Some(Sink::File(w))) => {
            let mut w = w.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        Some(Some(Sink::Memory(lines))) => {
            lines
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(line.to_string());
        }
        _ => {}
    }
}

/// A field value attachable to spans and events: everything we record
/// is a string, an integer, or a float.
#[derive(Debug, Clone, Copy)]
pub enum FieldValue<'a> {
    /// A string value.
    Str(&'a str),
    /// An unsigned integer value.
    U64(u64),
    /// A float value.
    F64(f64),
}

impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue<'_> {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        FieldValue::Str(v)
    }
}

fn put_field(w: &mut ObjWriter, key: &str, val: &FieldValue<'_>) {
    match *val {
        FieldValue::Str(s) => w.field_str(key, s),
        FieldValue::U64(u) => w.field_u64(key, u),
        FieldValue::F64(f) => w.field_f64(key, f),
    };
}

fn thread_label() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// A timed region of work. Created by [`span`] / the [`span!`](crate::span!) macro;
/// emits one `"span"` trace line when dropped. When tracing is off the
/// span is inert (no clock read, no allocation).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, OwnedField)>,
    live: bool,
}

#[derive(Debug, Clone)]
enum OwnedField {
    Str(String),
    U64(u64),
    F64(f64),
}

impl Span {
    /// Attaches a field to the span (no-op when tracing is off).
    /// Builder-style so call sites chain off [`span`].
    pub fn with<'a>(mut self, key: &'static str, val: impl Into<FieldValue<'a>>) -> Self {
        if self.live {
            let owned = match val.into() {
                FieldValue::Str(s) => OwnedField::Str(s.to_string()),
                FieldValue::U64(u) => OwnedField::U64(u),
                FieldValue::F64(f) => OwnedField::F64(f),
            };
            self.fields.push((key, owned));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end_ns = now_ns();
        let mut w = ObjWriter::new();
        w.field_str("type", "span")
            .field_str("name", self.name)
            .field_u64("t_us", self.start_ns / 1_000)
            .field_u64("dur_us", end_ns.saturating_sub(self.start_ns) / 1_000)
            .field_str("thread", &thread_label());
        for (k, v) in &self.fields {
            match v {
                OwnedField::Str(s) => w.field_str(k, s),
                OwnedField::U64(u) => w.field_u64(k, *u),
                OwnedField::F64(f) => w.field_f64(k, *f),
            };
        }
        write_line(&w.finish());
    }
}

/// Opens a [`Span`] named `name`, measuring from now until the span is
/// dropped. Prefer the [`span!`](crate::span!) macro, which reads better with
/// fields: `let _s = span!("certify", tid = tid);`.
pub fn span(name: &'static str) -> Span {
    let live = enabled();
    Span {
        name,
        start_ns: if live { now_ns() } else { 0 },
        fields: Vec::new(),
        live,
    }
}

/// Opens a named, field-carrying [`Span`]:
///
/// ```
/// let _guard = vrm_obs::span!("certify", tid = 3usize);
/// // ... timed work ...
/// ```
///
/// Fields accept `u64`/`usize`/`u32`/`f64`/`&str` values. The span is
/// emitted when the guard drops; bind it (`let _guard = ...`) or it
/// measures nothing.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::span($name)$(.with(stringify!($key), $val))*
    };
}

/// Emits one `"event"` trace line (a point-in-time observation, e.g. a
/// fired fault injection). No-op when tracing is off.
pub fn event(name: &str, fields: &[(&str, FieldValue<'_>)]) {
    if !enabled() {
        return;
    }
    let mut w = ObjWriter::new();
    w.field_str("type", "event")
        .field_str("name", name)
        .field_u64("t_us", now_ns() / 1_000)
        .field_str("thread", &thread_label());
    for (k, v) in fields {
        put_field(&mut w, k, v);
    }
    write_line(&w.finish());
}

/// Emits one `"metrics"` trace line: a [`crate::MetricsSnapshot`] of
/// every registered counter, plus any caller-supplied gauge fields
/// (per-run values that are not global counters, e.g. a driver's
/// current frontier length). No-op when tracing is off.
pub fn emit_metrics(scope: &str, gauges: &[(&str, u64)]) {
    if !enabled() {
        return;
    }
    let snap = crate::counters::snapshot(now_ns());
    let mut w = ObjWriter::new();
    w.field_str("type", "metrics")
        .field_str("scope", scope)
        .field_u64("seq", snap.seq)
        .field_u64("t_us", snap.t_ns / 1_000);
    let counters: Vec<(String, u64)> = snap.counters;
    w.field_raw("counters", &crate::json::counts_to_json(&counters));
    if !gauges.is_empty() {
        let gauges: Vec<(String, u64)> = gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        w.field_raw("gauges", &crate::json::counts_to_json(&gauges));
    }
    write_line(&w.finish());
}

/// Emits one `"profile"` trace line: per-phase [`crate::Histogram`]
/// summaries for one finished run (the drivers' expand/steal/idle
/// phases). No-op when tracing is off.
pub fn emit_profile(scope: &str, phases: &[(&str, &crate::Histogram)]) {
    if !enabled() {
        return;
    }
    let mut w = ObjWriter::new();
    w.field_str("type", "profile")
        .field_str("scope", scope)
        .field_u64("t_us", now_ns() / 1_000);
    let mut ph = ObjWriter::new();
    for (name, hist) in phases {
        ph.field_raw(name, &hist.to_json());
    }
    w.field_raw("phases", &ph.finish());
    write_line(&w.finish());
}

/// How often the drivers aggregate counters into a `"metrics"` line.
pub const SNAPSHOT_PERIOD_NS: u64 = 50_000_000;

/// Rate-limits periodic snapshot emission from many concurrent workers:
/// [`SnapshotGate::due`] returns `true` to exactly one caller per
/// [`SNAPSHOT_PERIOD_NS`] window.
#[derive(Debug)]
pub struct SnapshotGate {
    last_ns: std::sync::atomic::AtomicU64,
}

impl SnapshotGate {
    /// A gate whose first `due` fires one period after creation.
    pub fn new() -> Self {
        SnapshotGate {
            last_ns: std::sync::atomic::AtomicU64::new(now_ns()),
        }
    }

    /// `true` iff a snapshot period has elapsed and this caller won the
    /// race to emit it.
    pub fn due(&self) -> bool {
        let now = now_ns();
        let last = self.last_ns.load(Ordering::Relaxed);
        now.saturating_sub(last) >= SNAPSHOT_PERIOD_NS
            && self
                .last_ns
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }
}

impl Default for SnapshotGate {
    fn default() -> Self {
        Self::new()
    }
}
