//! `vrm-obs` — the workspace's observability layer.
//!
//! Every verification result here is produced by a long enumeration
//! (state-space walks, candidate sweeps, schedule explorations), and
//! before this crate existed the only visible output of a multi-hour
//! run was its final verdict. `vrm-obs` gives every layer the same
//! three instruments a production serving stack would demand of its
//! hot loops, with the same discipline: **near-zero cost when off**.
//!
//! * **Counters** ([`Counter`], [`MetricsSnapshot`]) — lock-free,
//!   process-global, monotone. The exploration drivers count states
//!   popped/pushed, dedup hits and deque steals; the promising model
//!   counts promise certifications; the axiomatic model counts
//!   candidates rejected per relation. Always on (a relaxed
//!   `fetch_add` is cheaper than the branch to skip it).
//! * **Tracing** ([`span!`], [`event`], [`emit_metrics`]) — a
//!   JSON-lines emitter gated by the `VRM_TRACE=<path>` environment
//!   variable. Off: one atomic load and a branch per site. On: spans
//!   record wall-time per named region (`certify`, `explore.parallel`,
//!   `check_wdrf`), events mark point occurrences (fault injections),
//!   and periodic `metrics` lines snapshot every counter mid-run, so a
//!   stuck exploration shows *where* it is stuck.
//! * **Histograms** ([`Histogram`]) — lock-free log2-bucketed duration
//!   recorders the drivers feed at their existing yield points
//!   (expand / steal / idle phases), summarized into a `profile` trace
//!   line per run.
//!
//! The fourth piece, [`BenchFile`]/[`BenchRecord`], is the
//! schema-versioned `BENCH_*.json` format the bench harness emits so
//! the repo's perf trajectory accumulates across PRs.
//!
//! Everything is hand-rolled on `std` only (the build environment is
//! offline), including the JSON writer/parser in [`json`]. The trace
//! and bench schemas are documented field-by-field in
//! `docs/TELEMETRY.md`; the design rationale (counter aggregation,
//! snapshot cadence, off-path cost) is DESIGN.md §3.10.
//!
//! # Example
//!
//! ```
//! static CANDIDATES: vrm_obs::Counter = vrm_obs::Counter::new("doc.candidates");
//!
//! fn check_one(tid: usize) {
//!     let _span = vrm_obs::span!("doc.check", tid = tid);
//!     CANDIDATES.add(1);
//!     // ... timed work; the span line is emitted on drop when
//!     // VRM_TRACE is set, and costs one branch when it is not.
//! }
//! check_one(0);
//! ```

#![deny(missing_docs)]

pub mod bench;
pub mod counters;
pub mod hist;
pub mod json;
pub mod serve;
pub mod trace;

pub use bench::{BenchFile, BenchRecord, BENCH_SCHEMA};
pub use counters::{snapshot, Counter, MetricsSnapshot};
pub use hist::Histogram;
pub use trace::{
    drain_memory_sink, emit_metrics, emit_profile, enabled, event, install_memory_sink, now_ns,
    span, FieldValue, SnapshotGate, Span, SNAPSHOT_PERIOD_NS, TRACE_ENV,
};
