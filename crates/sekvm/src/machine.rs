//! The multiprocessor machine: CPUs running scripted operations against
//! one shared [`KCore`], with contended ticket-lock acquisition.
//!
//! Every operation is split into phases: the CPU first draws a ticket on
//! the operation's *primary* lock and spins (one scheduler step per spin
//! iteration, so lock hand-off interleaves across CPUs exactly like the
//! ticket lock of Figure 7), then executes the operation body, then
//! releases. A seeded scheduler picks the next CPU each step, so runs are
//! reproducible while exercising many interleavings.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use vrm_explore::{Deps, ExploreConfig, ExploreStats, Sink, StateSpace};
use vrm_memmodel::ir::{Addr, Val};
use vrm_memmodel::symm;

use crate::events::{LockId, MEvent};
use crate::kcore::{HypercallError, KCore, KCoreConfig};
use crate::ticketlock::Ticket;

/// One scripted operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Register a VM; the resulting vmid is stored in the CPU's vm slot.
    RegisterVm,
    /// Register a vCPU on the CPU's current VM.
    RegisterVcpu,
    /// Stage an image in KServ pages and set boot info for the CPU's VM.
    StageImage {
        /// Page frames to use (must be KServ-owned).
        pfns: Vec<u64>,
    },
    /// Remap + verify the CPU's VM image (boot completion).
    VerifyImage,
    /// Claim and immediately release a vCPU (a scheduling quantum).
    RunQuantum {
        /// vCPU index.
        vcpu: u32,
    },
    /// Handle a stage-2 fault for the CPU's VM.
    Fault {
        /// Guest physical address.
        gpa: Addr,
        /// Donated KServ page.
        donor_pfn: u64,
    },
    /// Grant the page backing `gpa` to KServ.
    Grant {
        /// Guest physical address.
        gpa: Addr,
    },
    /// Revoke the page backing `gpa` from KServ.
    Revoke {
        /// Guest physical address.
        gpa: Addr,
    },
    /// The VM writes a value.
    VmWrite {
        /// Guest physical address.
        gpa: Addr,
        /// Value.
        val: Val,
    },
    /// The VM reads and checks a value.
    VmReadExpect {
        /// Guest physical address.
        gpa: Addr,
        /// Expected value.
        expect: Val,
    },
    /// KServ attempts to read a physical address (attack or I/O).
    KservRead {
        /// Physical address.
        pa: Addr,
        /// Whether the read is expected to be allowed.
        expect_allowed: bool,
    },
    /// KServ attempts to write a physical address.
    KservWrite {
        /// Physical address.
        pa: Addr,
        /// Value.
        val: Val,
        /// Whether the write is expected to be allowed.
        expect_allowed: bool,
    },
    /// Tear down the CPU's VM.
    Reclaim,
    /// Adopt another CPU's VM (multiprocessor VM): waits until that CPU
    /// has registered *and verified* its VM.
    AttachVm {
        /// The CPU whose VM to adopt.
        owner_cpu: usize,
    },
    /// Claim a vCPU (`restore_vm`) and keep running it until
    /// [`Op::VcpuEnd`]. Waits (retrying under the lock) while the vCPU is
    /// ACTIVE on another CPU.
    VcpuBegin {
        /// vCPU index.
        vcpu: u32,
    },
    /// Save and release the vCPU claimed by [`Op::VcpuBegin`], after
    /// bumping its context (simulated guest progress).
    VcpuEnd,
    /// Rendezvous: waits until every CPU whose script contains the same
    /// barrier id has arrived.
    Rendezvous {
        /// Barrier identifier.
        id: u32,
    },
    /// Write a byte to the VM's emulated UART (the I/O User exit path).
    UartWrite {
        /// The byte.
        byte: u8,
    },
    /// Send a virtual IPI (SGI) to a vCPU of the CPU's VM.
    SendIpi {
        /// Target vCPU.
        to_vcpu: u32,
        /// Interrupt id.
        irq: u8,
    },
    /// Wait until `irq` is pending on `vcpu`, then acknowledge it.
    WaitIrq {
        /// Receiving vCPU.
        vcpu: u32,
        /// Interrupt id.
        irq: u8,
    },
}

impl Op {
    /// The primary lock the machine acquires (with contention) before
    /// running the body. `None` = lock-free operation.
    pub fn primary_lock(&self, vmid: Option<u32>) -> Option<LockId> {
        match self {
            Op::RegisterVm => Some(LockId::VmId),
            Op::RegisterVcpu
            | Op::StageImage { .. }
            | Op::VerifyImage
            | Op::RunQuantum { .. }
            | Op::Fault { .. }
            | Op::Grant { .. }
            | Op::Revoke { .. }
            | Op::Reclaim => vmid.map(LockId::Vm),
            Op::VcpuBegin { .. } | Op::SendIpi { .. } | Op::UartWrite { .. } => {
                vmid.map(LockId::Vm)
            }
            Op::KservRead { .. } | Op::KservWrite { .. } => None,
            Op::VmWrite { .. } | Op::VmReadExpect { .. } => None,
            Op::AttachVm { .. } | Op::VcpuEnd | Op::Rendezvous { .. } => None,
            Op::WaitIrq { .. } => None,
        }
    }
}

/// A per-CPU list of operations.
pub type Script = Vec<Op>;

/// What a CPU is doing right now.
#[derive(Debug, Clone)]
enum Phase {
    /// Ready to start its next op.
    Idle,
    /// Holding a drawn ticket, spinning on the primary lock.
    Spinning {
        lock: LockId,
        ticket: Ticket,
        spins: u64,
    },
    /// All ops done.
    Finished,
}

/// Per-CPU machine state.
#[derive(Debug, Clone)]
struct CpuState {
    script: Script,
    next_op: usize,
    phase: Phase,
    /// The VM this CPU registered/operates on.
    vm: Option<u32>,
    /// vCPU currently claimed via [`Op::VcpuBegin`].
    held: Option<(u32, u32, crate::vcpu::VcpuCtx)>,
}

/// What an operation body did.
enum Exec {
    /// Completed (successfully or with a recorded failure).
    Done,
    /// Cannot proceed yet: release the lock and retry later.
    Retry,
}

/// The outcome of a machine run.
#[derive(Debug)]
pub struct RunReport {
    /// Operations that completed successfully.
    pub ops_ok: usize,
    /// Operations that failed, with their errors.
    pub failures: Vec<(usize, &'static str, HypercallError)>,
    /// Operations whose expectation (e.g. `expect_allowed`) was violated.
    pub expectation_violations: Vec<String>,
    /// Scheduler steps executed.
    pub steps: usize,
    /// Total lock spin iterations observed (contention measure).
    pub total_spins: u64,
    /// `true` if the machine stalled: no CPU could make progress (e.g. a
    /// rendezvous that can never complete).
    pub stalled: bool,
}

impl RunReport {
    /// `true` when nothing unexpected happened.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.expectation_violations.is_empty() && !self.stalled
    }
}

/// The multiprocessor machine.
#[derive(Debug)]
pub struct Machine {
    /// The shared trusted core.
    pub kcore: KCore,
    cpus: Vec<CpuState>,
    rng: StdRng,
}

impl Machine {
    /// Creates a machine with one script per CPU.
    pub fn new(cfg: KCoreConfig, scripts: Vec<Script>, seed: u64) -> Self {
        Machine {
            kcore: KCore::boot(cfg),
            cpus: scripts
                .into_iter()
                .map(|script| CpuState {
                    script,
                    next_op: 0,
                    phase: Phase::Idle,
                    vm: None,
                    held: None,
                })
                .collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs to completion (or `max_steps`), returning the report.
    pub fn run(&mut self, max_steps: usize) -> RunReport {
        let mut report = RunReport {
            ops_ok: 0,
            failures: Vec::new(),
            expectation_violations: Vec::new(),
            steps: 0,
            total_spins: 0,
            stalled: false,
        };
        // Stall detection: if no CPU completes an operation for this many
        // consecutive steps, every remaining CPU is waiting on something
        // that can never happen (deadlocked rendezvous, lost vCPU, ...).
        let stall_limit = 200
            * self.cpus.len().max(1)
            * self
                .cpus
                .iter()
                .map(|c| c.script.len() + 1)
                .max()
                .unwrap_or(1);
        let mut steps_without_progress = 0usize;
        while report.steps < max_steps {
            let runnable: Vec<usize> = (0..self.cpus.len())
                .filter(|&c| !matches!(self.cpus[c].phase, Phase::Finished))
                .collect();
            if runnable.is_empty() {
                break;
            }
            let before = report.ops_ok + report.failures.len();
            let cpu = runnable[self.rng.gen_range(0..runnable.len())];
            self.step(cpu, &mut report);
            report.steps += 1;
            if report.ops_ok + report.failures.len() > before {
                steps_without_progress = 0;
            } else {
                steps_without_progress += 1;
                if steps_without_progress > stall_limit {
                    report.stalled = true;
                    break;
                }
            }
        }
        report
    }

    fn step(&mut self, cpu: usize, report: &mut RunReport) {
        let (op, phase) = {
            let c = &self.cpus[cpu];
            if c.next_op >= c.script.len() {
                self.cpus[cpu].phase = Phase::Finished;
                return;
            }
            (c.script[c.next_op].clone(), c.phase.clone())
        };
        match phase {
            Phase::Finished => {}
            Phase::Idle => {
                // The skip-lock-acquire mutant runs every op body without
                // drawing a ticket; `wdrf::validate_log` must flag the
                // resulting unguarded page-table writes.
                let lock = if self.kcore.cfg.skip_lock_acquire {
                    None
                } else {
                    op.primary_lock(self.cpus[cpu].vm)
                };
                match lock {
                    Some(lock) => {
                        let ticket = self.kcore.locks.get_mut(lock).draw();
                        self.cpus[cpu].phase = Phase::Spinning {
                            lock,
                            ticket,
                            spins: 0,
                        };
                    }
                    None => {
                        // Lock-free op: execute immediately.
                        if matches!(self.execute(cpu, &op, report), Exec::Done) {
                            self.cpus[cpu].next_op += 1;
                        }
                    }
                }
            }
            Phase::Spinning {
                lock,
                ticket,
                spins,
            } => {
                if self.kcore.locks.get_mut(lock).try_enter(cpu, ticket) {
                    self.kcore.log.push(MEvent::LockAcquire {
                        cpu,
                        lock,
                        ticket: ticket.0,
                        spins,
                    });
                    report.total_spins += spins;
                    let done = matches!(self.execute(cpu, &op, report), Exec::Done);
                    self.kcore.locks.get_mut(lock).release(cpu);
                    self.kcore.log.push(MEvent::LockRelease { cpu, lock });
                    self.cpus[cpu].phase = Phase::Idle;
                    if done {
                        self.cpus[cpu].next_op += 1;
                    }
                } else {
                    self.cpus[cpu].phase = Phase::Spinning {
                        lock,
                        ticket,
                        spins: spins + 1,
                    };
                }
            }
        }
    }

    fn execute(&mut self, cpu: usize, op: &Op, report: &mut RunReport) -> Exec {
        let name = op_name(op);
        // Wait-style operations first (no OpStart until they fire).
        match op {
            Op::AttachVm { owner_cpu } => {
                let ready = self.cpus.get(*owner_cpu).and_then(|c| c.vm).filter(|&vm| {
                    self.kcore
                        .vm(vm)
                        .map(|m| m.state == crate::kcore::VmState::Verified)
                        .unwrap_or(false)
                });
                return match ready {
                    Some(vm) => {
                        self.cpus[cpu].vm = Some(vm);
                        report.ops_ok += 1;
                        Exec::Done
                    }
                    None => Exec::Retry,
                };
            }
            Op::Rendezvous { id } => {
                // Arrived iff every member CPU's next op is this barrier
                // or it has already passed it.
                let all = (0..self.cpus.len()).all(|c| {
                    let pos = self.cpus[c]
                        .script
                        .iter()
                        .position(|o| matches!(o, Op::Rendezvous { id: i } if i == id));
                    match pos {
                        None => true,
                        Some(p) => self.cpus[c].next_op >= p,
                    }
                });
                return if all {
                    report.ops_ok += 1;
                    Exec::Done
                } else {
                    Exec::Retry
                };
            }
            Op::VcpuBegin { vcpu } => {
                let Some(vmid) = self.cpus[cpu].vm else {
                    report
                        .failures
                        .push((cpu, "vcpu_begin", HypercallError::BadVm));
                    return Exec::Done;
                };
                return match self.kcore.run_vcpu_locked(cpu, vmid, *vcpu) {
                    Ok(ctx) => {
                        self.cpus[cpu].held = Some((vmid, *vcpu, ctx));
                        self.kcore.log.push(MEvent::OpStart {
                            cpu,
                            name: "vcpu_begin",
                        });
                        self.kcore.log.push(MEvent::OpEnd {
                            cpu,
                            name: "vcpu_begin",
                            ok: true,
                        });
                        report.ops_ok += 1;
                        Exec::Done
                    }
                    // Another CPU holds the vCPU: wait for it.
                    Err(HypercallError::Vcpu(crate::vcpu::VcpuError::NotInactive)) => Exec::Retry,
                    Err(e) => {
                        report.failures.push((cpu, "vcpu_begin", e));
                        Exec::Done
                    }
                };
            }
            Op::WaitIrq { vcpu, irq } => {
                let Some(vmid) = self.cpus[cpu].vm else {
                    report
                        .failures
                        .push((cpu, "wait_irq", HypercallError::BadVm));
                    return Exec::Done;
                };
                let pending = self
                    .kcore
                    .pending_irqs(vmid, *vcpu)
                    .unwrap_or_default()
                    .contains(irq);
                if !pending {
                    return Exec::Retry;
                }
                // Take the VM lock briefly for the ack (nested, immediate).
                self.kcore.lock(cpu, LockId::Vm(vmid));
                let r = self.kcore.ack_irq_locked(cpu, vmid, *vcpu, *irq);
                self.kcore.unlock(cpu, LockId::Vm(vmid));
                match r {
                    Ok(()) => report.ops_ok += 1,
                    Err(e) => report.failures.push((cpu, "wait_irq", e)),
                }
                return Exec::Done;
            }
            Op::VcpuEnd => {
                let Some((vmid, vcpu, mut ctx)) = self.cpus[cpu].held.take() else {
                    report
                        .failures
                        .push((cpu, "vcpu_end", HypercallError::BadVcpu));
                    return Exec::Done;
                };
                // Simulated guest progress while the vCPU ran here.
                ctx.regs[0] += 1;
                ctx.pc += 4;
                match self.kcore.stop_vcpu(cpu, vmid, vcpu, ctx) {
                    Ok(()) => report.ops_ok += 1,
                    Err(e) => report.failures.push((cpu, "vcpu_end", e)),
                }
                return Exec::Done;
            }
            _ => {}
        }
        self.kcore.log.push(MEvent::OpStart { cpu, name });
        let result: Result<(), HypercallError> = (|| {
            match op {
                Op::RegisterVm => {
                    let vmid = self.kcore.register_vm_locked(cpu)?;
                    self.cpus[cpu].vm = Some(vmid);
                }
                Op::RegisterVcpu => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.register_vcpu_locked(cpu, vmid)?;
                }
                Op::StageImage { pfns } => {
                    let vmid = self.require_vm(cpu)?;
                    // KServ writes the image directly (it owns the pages).
                    let mut words = Vec::new();
                    for &pfn in pfns {
                        for w in 0..crate::layout::PAGE_WORDS {
                            let val = pfn * 31 + w;
                            self.kcore.mem.write(crate::layout::page_addr(pfn) + w, val);
                            words.push(val);
                        }
                    }
                    let hash = KCore::image_hash(&words);
                    self.kcore
                        .set_boot_info_locked(cpu, vmid, pfns.clone(), hash)?;
                }
                Op::VerifyImage => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.remap_vm_image_locked(cpu, vmid)?;
                    self.kcore.verify_vm_image_locked(cpu, vmid)?;
                }
                Op::RunQuantum { vcpu } => {
                    let vmid = self.require_vm(cpu)?;
                    let ctx = self.kcore.run_vcpu_locked(cpu, vmid, *vcpu)?;
                    // Immediately save back (the quantum itself is the
                    // VM ops elsewhere in the script).
                    self.kcore.stop_vcpu(cpu, vmid, *vcpu, ctx)?;
                }
                Op::Fault { gpa, donor_pfn } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore
                        .handle_s2_fault_locked(cpu, vmid, *gpa, *donor_pfn)?;
                }
                Op::Grant { gpa } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.grant_page_locked(cpu, vmid, *gpa)?;
                }
                Op::Revoke { gpa } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.revoke_page_locked(cpu, vmid, *gpa)?;
                }
                Op::VmWrite { gpa, val } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.vm_write(cpu, vmid, *gpa, *val)?;
                }
                Op::VmReadExpect { gpa, expect } => {
                    let vmid = self.require_vm(cpu)?;
                    let got = self.kcore.vm_read(cpu, vmid, *gpa)?;
                    if got != *expect {
                        report.expectation_violations.push(format!(
                            "CPU{cpu}: VM read of {gpa:#x} = {got}, expected {expect}"
                        ));
                    }
                }
                Op::KservRead { pa, expect_allowed } => {
                    let r = self.kcore.kserv_read(cpu, *pa);
                    if r.is_ok() != *expect_allowed {
                        report.expectation_violations.push(format!(
                            "CPU{cpu}: KServ read of {pa:#x}: {r:?}, expected allowed={expect_allowed}"
                        ));
                    }
                }
                Op::KservWrite {
                    pa,
                    val,
                    expect_allowed,
                } => {
                    let r = self.kcore.kserv_write(cpu, *pa, *val);
                    if r.is_ok() != *expect_allowed {
                        report.expectation_violations.push(format!(
                            "CPU{cpu}: KServ write of {pa:#x}: {r:?}, expected allowed={expect_allowed}"
                        ));
                    }
                }
                Op::Reclaim => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.reclaim_vm_pages_locked(cpu, vmid)?;
                }
                Op::SendIpi { to_vcpu, irq } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.send_sgi_locked(cpu, vmid, *to_vcpu, *irq)?;
                }
                Op::UartWrite { byte } => {
                    let vmid = self.require_vm(cpu)?;
                    self.kcore.uart_write_locked(cpu, vmid, *byte)?;
                }
                Op::AttachVm { .. }
                | Op::VcpuBegin { .. }
                | Op::VcpuEnd
                | Op::Rendezvous { .. }
                | Op::WaitIrq { .. } => {
                    unreachable!("handled in the wait-style prologue")
                }
            }
            Ok(())
        })();
        let ok = result.is_ok();
        if let Err(e) = result {
            report.failures.push((cpu, name, e));
        } else {
            report.ops_ok += 1;
        }
        self.kcore.log.push(MEvent::OpEnd { cpu, name, ok });
        Exec::Done
    }

    fn require_vm(&self, cpu: usize) -> Result<u32, HypercallError> {
        self.cpus[cpu].vm.ok_or(HypercallError::BadVm)
    }

    /// The vm registered by a CPU (after its `RegisterVm` ran).
    pub fn cpu_vm(&self, cpu: usize) -> Option<u32> {
        self.cpus[cpu].vm
    }

    /// Enumerates **every** scheduler interleaving of the scripts on the
    /// unified exploration engine, instead of the one walk a seed picks.
    ///
    /// Each terminal schedule contributes a [`SchedOutcome`]: its
    /// completed/failed operations, expectation violations, dynamic-wDRF
    /// log violations, and whether it dead-ended. Distinct machine states
    /// are deduplicated (lock *positions* rather than absolute ticket
    /// counters, so spin history does not split states), which keeps the
    /// walk finite for finite scripts.
    ///
    /// A schedule that stalls in a *stable* state (no CPU's step changes
    /// anything — e.g. an unsatisfiable rendezvous) is reported with
    /// `stalled = true`. A branch that cycles through a few states
    /// without progress (e.g. repeatedly re-drawing a ticket for a vCPU
    /// that is never released) is pruned by the visited-set and simply
    /// contributes no terminal outcome.
    pub fn explore_schedules(
        cfg: KCoreConfig,
        scripts: Vec<Script>,
        ecfg: &ExhaustiveConfig,
    ) -> Result<ExhaustiveReport, vrm_explore::ExploreError> {
        Self::explore_schedules_from(cfg, scripts, ecfg, None)
    }

    /// [`explore_schedules`](Self::explore_schedules), optionally
    /// resuming a prior truncated exploration's [`ScheduleResume`]
    /// instead of restarting: the engine re-seeds its frontier from the
    /// parked checkpoint and deduplicates against the prior run's
    /// visited digests, so only fresh states are explored. The returned
    /// report's outcomes are the **union** of the prior partial
    /// outcomes and this run's, and its stats sum both attempts'
    /// counters — with the *final* attempt's completeness, because a
    /// resumed walk that finishes exhaustively has, jointly with its
    /// prior, covered the whole space.
    ///
    /// This is the handoff a serving layer uses: cache the
    /// `ScheduleResume` beside an `Unknown` verdict, and a re-query
    /// with a larger budget continues the walk it paid for.
    pub fn explore_schedules_from(
        cfg: KCoreConfig,
        scripts: Vec<Script>,
        ecfg: &ExhaustiveConfig,
        prior: Option<ScheduleResume>,
    ) -> Result<ExhaustiveReport, vrm_explore::ExploreError> {
        let _span = vrm_obs::span!(
            "machine.explore_schedules",
            scripts = scripts.len(),
            jobs = ecfg.jobs,
            resumed = u64::from(prior.is_some()),
        );
        let space = SchedSpace::new(cfg, scripts);
        let xcfg = ExploreConfig::with_max_states(ecfg.max_states).jobs(ecfg.jobs);
        let (seed, mut outcomes, prior_stats) = match prior {
            Some(p) => {
                // The checkpoint can only have been parked by this
                // module (the fields are private), so the downcast
                // failing means the handle was corrupted in storage.
                let Some(rs) = p.checkpoint.resume::<SchedNode>() else {
                    return Err(vrm_explore::ExploreError::CorruptCheckpoint(
                        vrm_explore::CheckpointFault::BadState,
                    ));
                };
                (Some(rs), p.outcomes, Some(p.stats))
            }
            None => (None, BTreeSet::new(), None),
        };
        let run = |xcfg: &ExploreConfig,
                   seed: Option<vrm_explore::ResumeState<SchedNode>>|
         -> Result<_, vrm_explore::ExploreError> {
            if ecfg.reduction {
                vrm_explore::explore_reduced_from(&space, xcfg, seed)
            } else {
                vrm_explore::explore_from(&space, xcfg, seed)
            }
        };
        let ex = match run(&xcfg, seed.clone()) {
            Ok(ex) => ex,
            // All parallel workers died: the sequential driver has no
            // worker threads to lose, so fall back to it once.
            Err(vrm_explore::ExploreError::WorkerPanic(_)) => run(&xcfg.jobs(1), seed)?,
            Err(e) => return Err(e),
        };
        outcomes.extend(ex.emits);
        let mut stats = ex.stats;
        if let Some(prior) = prior_stats {
            // Sum the attempts' counters but keep the final attempt's
            // completeness (absorb's merge is truncation-sticky, which
            // is wrong for a resumed continuation).
            let completeness = stats.completeness;
            stats.absorb(&prior);
            stats.completeness = completeness;
        }
        let resume = ex.resume.map(|rs| ScheduleResume {
            checkpoint: vrm_explore::Checkpoint::park(rs),
            outcomes: outcomes.clone(),
            stats,
        });
        Ok(ExhaustiveReport {
            outcomes,
            stats,
            resume,
        })
    }

    /// [`explore_schedules`](Self::explore_schedules) with bounded
    /// budget-doubling restarts: a truncated walk is resumed from its
    /// checkpoint with doubled budgets (up to `max_retries` times), and a
    /// walk that lost all its workers is retried sequentially. The final
    /// report may still be truncated — callers must consult
    /// [`ExhaustiveReport::verdict`], never assume exhaustiveness.
    pub fn explore_schedules_resilient(
        cfg: KCoreConfig,
        scripts: Vec<Script>,
        ecfg: &ExhaustiveConfig,
        max_retries: usize,
    ) -> Result<ExhaustiveReport, vrm_explore::ExploreError> {
        let _span = vrm_obs::span!(
            "machine.explore_schedules_resilient",
            scripts = scripts.len(),
            jobs = ecfg.jobs,
        );
        let space = SchedSpace::new(cfg, scripts);
        let xcfg = ExploreConfig::with_max_states(ecfg.max_states).jobs(ecfg.jobs);
        let ex = if ecfg.reduction {
            vrm_explore::retry_with_escalation_reduced(&space, &xcfg, max_retries)?
        } else {
            vrm_explore::retry_with_escalation(&space, &xcfg, max_retries)?
        };
        let outcomes: BTreeSet<SchedOutcome> = ex.emits.into_iter().collect();
        let resume = ex.resume.map(|rs| ScheduleResume {
            checkpoint: vrm_explore::Checkpoint::park(rs),
            outcomes: outcomes.clone(),
            stats: ex.stats,
        });
        Ok(ExhaustiveReport {
            outcomes,
            stats: ex.stats,
            resume,
        })
    }

    /// Checks refinement over **every** scheduler interleaving: each
    /// concrete transition the walk reaches must project, via
    /// [`refine::check_transition`](crate::refine::check_transition), to
    /// a legal sequence of abstract steps landing exactly on the
    /// projected post-state (or be a stutter), and every reached state
    /// must satisfy abstract noninterference.
    ///
    /// The walk itself is identical to
    /// [`explore_schedules`](Self::explore_schedules) — same nodes, same
    /// dedup, same terminal outcomes — so the returned report's
    /// `outcomes` agree with the schedule exploration's, while
    /// `violations` carries the simulation failures.
    pub fn check_refinement(
        cfg: KCoreConfig,
        scripts: Vec<Script>,
        ecfg: &ExhaustiveConfig,
    ) -> Result<RefinementReport, vrm_explore::ExploreError> {
        let _span = vrm_obs::span!(
            "machine.check_refinement",
            scripts = scripts.len(),
            jobs = ecfg.jobs,
        );
        let space = RefineSpace::new(cfg, scripts);
        let xcfg = ExploreConfig::with_max_states(ecfg.max_states).jobs(ecfg.jobs);
        let run = |xcfg: &ExploreConfig| -> Result<_, vrm_explore::ExploreError> {
            if ecfg.reduction {
                vrm_explore::explore_reduced(&space, xcfg)
            } else {
                vrm_explore::explore(&space, xcfg)
            }
        };
        let ex = match run(&xcfg) {
            Ok(ex) => ex,
            Err(vrm_explore::ExploreError::WorkerPanic(_)) => run(&xcfg.jobs(1))?,
            Err(e) => return Err(e),
        };
        let mut outcomes = BTreeSet::new();
        let mut violations = BTreeSet::new();
        for e in ex.emits {
            match e {
                RefineEmit::Outcome(o) => {
                    outcomes.insert(o);
                }
                RefineEmit::Violation(v) => {
                    violations.insert(v);
                }
            }
        }
        Ok(RefinementReport {
            outcomes,
            violations,
            stats: ex.stats,
        })
    }

    /// Runs one seeded schedule to completion (like [`run`](Self::run))
    /// while checking refinement on every executed operation — the cheap
    /// single-trace oracle behind the property-based tests, sharing
    /// [`check_transition`](crate::refine::check_transition) with the
    /// exhaustive [`check_refinement`](Self::check_refinement).
    pub fn run_refined(&mut self, max_steps: usize) -> (RunReport, Vec<RefinementViolation>) {
        let mut report = RunReport {
            ops_ok: 0,
            failures: Vec::new(),
            expectation_violations: Vec::new(),
            steps: 0,
            total_spins: 0,
            stalled: false,
        };
        let mut violations = Vec::new();
        let stall_limit = 200
            * self.cpus.len().max(1)
            * self
                .cpus
                .iter()
                .map(|c| c.script.len() + 1)
                .max()
                .unwrap_or(1);
        let mut steps_without_progress = 0usize;
        while report.steps < max_steps {
            let runnable: Vec<usize> = (0..self.cpus.len())
                .filter(|&c| !matches!(self.cpus[c].phase, Phase::Finished))
                .collect();
            if runnable.is_empty() {
                break;
            }
            let cpu = runnable[self.rng.gen_range(0..runnable.len())];
            let pre = self.kcore.clone();
            let pre_vm = self.cpus[cpu].vm;
            let pre_op = self.cpus[cpu].next_op;
            let (before_ok, before_fail) = (report.ops_ok, report.failures.len());
            self.step(cpu, &mut report);
            report.steps += 1;
            let executed = report.ops_ok > before_ok || report.failures.len() > before_fail;
            if executed {
                let op = self.cpus[cpu].script[pre_op].clone();
                let ok = report.failures.len() == before_fail;
                for detail in crate::refine::check_transition(&pre, pre_vm, &op, ok, &self.kcore) {
                    violations.push(RefinementViolation {
                        cpu,
                        op: op_name(&op),
                        detail,
                    });
                }
                steps_without_progress = 0;
            } else {
                steps_without_progress += 1;
                if steps_without_progress > stall_limit {
                    report.stalled = true;
                    break;
                }
            }
        }
        (report, violations)
    }
}

/// Bounds for [`Machine::explore_schedules`].
#[derive(Debug, Clone)]
pub struct ExhaustiveConfig {
    /// Cap on distinct machine states; hitting it truncates the walk
    /// (partial outcomes, `Unknown` verdict) rather than erroring.
    pub max_states: usize,
    /// Worker threads (1 = the sequential reference driver).
    pub jobs: usize,
    /// Run the walk through the reduced drivers (`true`, the default):
    /// CPUs with identical scripts are collapsed to orbit
    /// representatives via path replay, and terminal outcomes are
    /// re-rendered for every collapsed variant, so the outcome set and
    /// verdict are identical to the exhaustive walk's (see
    /// `docs/REDUCTION.md`). `false` forces the exact unreduced walk —
    /// the differential anchor the soundness tests compare against.
    pub reduction: bool,
}

impl Default for ExhaustiveConfig {
    fn default() -> Self {
        ExhaustiveConfig {
            max_states: 1 << 20,
            jobs: ExploreConfig::jobs_from_env(),
            reduction: true,
        }
    }
}

/// What one complete schedule observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SchedOutcome {
    /// Operations that completed successfully.
    pub ops_ok: usize,
    /// Failed operations, rendered as `CPU<i> <op>: <error>`.
    pub failures: Vec<String>,
    /// Operations whose expectation (e.g. `expect_allowed`) was violated.
    pub expectation_violations: Vec<String>,
    /// Dynamic-wDRF violations found in this schedule's event log.
    pub wdrf_violations: Vec<String>,
    /// `true` if the schedule dead-ended with unfinished CPUs.
    pub stalled: bool,
}

impl SchedOutcome {
    /// `true` when nothing unexpected happened on this schedule.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
            && self.expectation_violations.is_empty()
            && self.wdrf_violations.is_empty()
            && !self.stalled
    }
}

/// A suspended schedule exploration, produced by a truncated
/// [`Machine::explore_schedules`] run and consumed by
/// [`Machine::explore_schedules_from`]. Wraps the engine's checkpoint
/// type-erased (the schedule node type is private to this module)
/// together with the partial outcomes and stats already paid for, so a
/// holder — e.g. a verdict cache — can suspend and later continue the
/// walk without naming any machine internals.
#[derive(Debug)]
pub struct ScheduleResume {
    checkpoint: vrm_explore::Checkpoint,
    outcomes: BTreeSet<SchedOutcome>,
    stats: ExploreStats,
}

impl ScheduleResume {
    /// Unexpanded frontier entries parked in the checkpoint.
    pub fn frontier_len(&self) -> usize {
        self.checkpoint.frontier_len()
    }

    /// Distinct states visited before the walk was suspended.
    pub fn states_visited(&self) -> usize {
        self.stats.states
    }

    /// Serializes the suspended walk to a self-contained, checksummed
    /// byte blob (`VRMSRES1`): the frontier as **schedule paths** (CPU
    /// choices from the root, replayed by the private scheduling
    /// node's deterministic single-step function) inside a
    /// VRMCKPT1 container, plus the visited digests, partial outcomes
    /// and stats. A `KCore` is never encoded; determinism of the step
    /// function is what makes the paths a faithful image. `None` only
    /// if the handle holds a foreign checkpoint type (cannot happen
    /// for checkpoints this module produced).
    ///
    /// This is the durable/wire format: the serve layer's write-ahead
    /// log and worker-process stdio both carry exactly these bytes.
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        let rs = self.checkpoint.peek::<SchedNode>()?;
        let inner = vrm_explore::ResumeState {
            frontier: rs
                .frontier
                .iter()
                .map(|(n, d)| (SchedPath(n.path.clone()), *d))
                .collect(),
            visited_digests: rs.visited_digests.clone(),
        }
        .to_bytes();
        let mut out = Vec::with_capacity(inner.len() + 256);
        out.extend_from_slice(RESUME_MAGIC);
        out.extend_from_slice(&(inner.len() as u64).to_le_bytes());
        out.extend_from_slice(&inner);
        out.extend_from_slice(&(self.outcomes.len() as u64).to_le_bytes());
        for o in &self.outcomes {
            out.extend_from_slice(&(o.ops_ok as u64).to_le_bytes());
            out.push(u8::from(o.stalled));
            for list in [&o.failures, &o.expectation_violations, &o.wdrf_violations] {
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for s in list {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        let st = &self.stats;
        for v in [
            st.states as u64,
            st.frontier_peak as u64,
            st.dedup_hits as u64,
            st.popped as u64,
            st.pushed as u64,
            st.steals as u64,
            st.wall_ns,
            st.jobs as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match st.completeness {
            vrm_explore::Completeness::Exhaustive => out.push(0),
            vrm_explore::Completeness::Truncated {
                reason,
                frontier_len,
            } => {
                out.push(1);
                out.push(reason_tag(reason));
                out.extend_from_slice(&(frontier_len as u64).to_le_bytes());
            }
        }
        let body_len = out.len() as u64;
        let sum = vrm_explore::checksum64(&out);
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
        Some(out)
    }

    /// Reconstructs a suspended walk from [`to_bytes`](Self::to_bytes)
    /// output by replaying each frontier path from the workload's
    /// initial state. Every replayed node's [`vrm_explore::digest128`]
    /// must appear in the blob's own visited set — a blob produced
    /// against a different build or workload fails this soundness
    /// check and is rejected as corrupt rather than silently resuming
    /// a wrong walk. All rejections surface as
    /// [`vrm_explore::ExploreError::CorruptCheckpoint`], which callers
    /// already treat as "restart from scratch".
    pub fn from_bytes(
        cfg: KCoreConfig,
        scripts: Vec<Script>,
        bytes: &[u8],
    ) -> Result<ScheduleResume, vrm_explore::ExploreError> {
        use vrm_explore::{CheckpointFault, ExploreError};
        let fail = |f: CheckpointFault| Err(ExploreError::CorruptCheckpoint(f));
        if bytes.len() < RESUME_MAGIC.len() + vrm_explore::CHECKPOINT_FOOTER_LEN {
            return fail(CheckpointFault::Truncated);
        }
        let (body, footer) = bytes.split_at(bytes.len() - vrm_explore::CHECKPOINT_FOOTER_LEN);
        let declared_len = u64::from_le_bytes(footer[..8].try_into().expect("8-byte slice"));
        let declared_sum = u64::from_le_bytes(footer[8..].try_into().expect("8-byte slice"));
        if declared_len != body.len() as u64 {
            return fail(CheckpointFault::LengthMismatch);
        }
        if declared_sum != vrm_explore::checksum64(body) {
            return fail(CheckpointFault::ChecksumMismatch);
        }
        let mut b = body;
        match take(&mut b, RESUME_MAGIC.len()) {
            Some(m) if m == RESUME_MAGIC => {}
            Some(_) => return fail(CheckpointFault::BadMagic),
            None => return fail(CheckpointFault::Truncated),
        }
        let Some(inner_len) = take_u64(&mut b) else {
            return fail(CheckpointFault::Truncated);
        };
        let Some(inner) = take(&mut b, inner_len as usize) else {
            return fail(CheckpointFault::Truncated);
        };
        let paths: vrm_explore::ResumeState<SchedPath> =
            vrm_explore::ResumeState::try_from_bytes(inner)?;
        let Some(n_outcomes) = take_u64(&mut b) else {
            return fail(CheckpointFault::Truncated);
        };
        let mut outcomes = BTreeSet::new();
        for _ in 0..n_outcomes {
            let (Some(ops_ok), Some(stalled)) = (take_u64(&mut b), take_u8(&mut b)) else {
                return fail(CheckpointFault::Truncated);
            };
            let mut lists: [Vec<String>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for list in &mut lists {
                let Some(len) = take_u32(&mut b) else {
                    return fail(CheckpointFault::Truncated);
                };
                for _ in 0..len {
                    let Some(s) = take_str(&mut b) else {
                        return fail(CheckpointFault::BadState);
                    };
                    list.push(s);
                }
            }
            let [failures, expectation_violations, wdrf_violations] = lists;
            outcomes.insert(SchedOutcome {
                ops_ok: ops_ok as usize,
                failures,
                expectation_violations,
                wdrf_violations,
                stalled: stalled != 0,
            });
        }
        let mut nums = [0u64; 8];
        for v in &mut nums {
            let Some(x) = take_u64(&mut b) else {
                return fail(CheckpointFault::Truncated);
            };
            *v = x;
        }
        let completeness = match take_u8(&mut b) {
            Some(0) => vrm_explore::Completeness::Exhaustive,
            Some(1) => {
                let (Some(tag), Some(frontier_len)) = (take_u8(&mut b), take_u64(&mut b)) else {
                    return fail(CheckpointFault::Truncated);
                };
                let Some(reason) = tag_reason(tag) else {
                    return fail(CheckpointFault::BadState);
                };
                vrm_explore::Completeness::Truncated {
                    reason,
                    frontier_len: frontier_len as usize,
                }
            }
            _ => return fail(CheckpointFault::BadState),
        };
        if !b.is_empty() {
            return fail(CheckpointFault::TrailingBytes);
        }
        let stats = ExploreStats {
            states: nums[0] as usize,
            frontier_peak: nums[1] as usize,
            dedup_hits: nums[2] as usize,
            popped: nums[3] as usize,
            pushed: nums[4] as usize,
            steals: nums[5] as usize,
            wall_ns: nums[6],
            jobs: nums[7] as usize,
            completeness,
        };
        let space = SchedSpace::new(cfg, scripts);
        let root = space
            .initial()
            .pop()
            .expect("schedule space has one initial node");
        let mut frontier = Vec::with_capacity(paths.frontier.len());
        for (SchedPath(path), depth) in paths.frontier {
            let mut node = root.clone();
            for &cpu in &path {
                if usize::from(cpu) >= node.cpus.len() {
                    return fail(CheckpointFault::BadState);
                }
                node = node.step_once(usize::from(cpu));
            }
            if !paths
                .visited_digests
                .contains(&vrm_explore::digest128(&node))
            {
                return fail(CheckpointFault::BadState);
            }
            frontier.push((node, depth));
        }
        Ok(ScheduleResume {
            checkpoint: vrm_explore::Checkpoint::park(vrm_explore::ResumeState {
                frontier,
                visited_digests: paths.visited_digests,
            }),
            outcomes,
            stats,
        })
    }
}

/// Magic + version prefix of the serialized [`ScheduleResume`] format
/// ([`ScheduleResume::to_bytes`]).
pub const RESUME_MAGIC: &[u8; 8] = b"VRMSRES1";

/// A frontier entry's durable image: the schedule path reaching it from
/// the initial state, carried through the engine's VRMCKPT1 container
/// via [`vrm_explore::CheckpointState`].
struct SchedPath(Vec<u16>);

impl vrm_explore::CheckpointState for SchedPath {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for &c in &self.0 {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut b = bytes;
        let n = take_u32(&mut b)? as usize;
        if b.len() != n * 2 {
            return None;
        }
        let mut path = Vec::with_capacity(n);
        for chunk in b.chunks_exact(2) {
            path.push(u16::from_le_bytes([chunk[0], chunk[1]]));
        }
        Some(SchedPath(path))
    }
}

fn reason_tag(r: vrm_explore::TruncationReason) -> u8 {
    use vrm_explore::TruncationReason as T;
    match r {
        T::StateLimit => 0,
        T::DepthLimit => 1,
        T::Deadline => 2,
        T::MemoryBudget => 3,
        T::WorkerLost => 4,
    }
}

fn tag_reason(tag: u8) -> Option<vrm_explore::TruncationReason> {
    use vrm_explore::TruncationReason as T;
    Some(match tag {
        0 => T::StateLimit,
        1 => T::DepthLimit,
        2 => T::Deadline,
        3 => T::MemoryBudget,
        4 => T::WorkerLost,
        _ => return None,
    })
}

fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if b.len() < n {
        return None;
    }
    let (head, tail) = b.split_at(n);
    *b = tail;
    Some(head)
}

fn take_u8(b: &mut &[u8]) -> Option<u8> {
    take(b, 1).map(|s| s[0])
}

fn take_u32(b: &mut &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(take(b, 4)?.try_into().ok()?))
}

fn take_u64(b: &mut &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(take(b, 8)?.try_into().ok()?))
}

fn take_str(b: &mut &[u8]) -> Option<String> {
    let len = take_u32(b)? as usize;
    String::from_utf8(take(b, len)?.to_vec()).ok()
}

/// The machine's observable behaviour over all schedules.
#[derive(Debug)]
pub struct ExhaustiveReport {
    /// Every distinct terminal observation.
    pub outcomes: BTreeSet<SchedOutcome>,
    /// Enumeration counters.
    pub stats: ExploreStats,
    /// Present exactly when the walk was truncated: feed it back
    /// through [`Machine::explore_schedules_from`] (with a larger
    /// budget) to continue instead of restarting.
    pub resume: Option<ScheduleResume>,
}

impl ExhaustiveReport {
    /// `true` iff every explored schedule was clean.
    ///
    /// Only meaningful when the walk was exhaustive; use
    /// [`verdict`](Self::verdict) for the sound three-valued answer.
    pub fn all_clean(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(SchedOutcome::clean)
    }

    /// Sound three-valued verdict: a truncated walk yields `Unknown`
    /// with its coverage (an unexplored schedule could still be dirty,
    /// and a dirty outcome set from a truncated walk could still grow),
    /// otherwise `Pass`/`Fail` per [`all_clean`](Self::all_clean).
    pub fn verdict(&self) -> vrm_explore::Verdict {
        vrm_explore::Verdict::from_parts(self.all_clean(), &self.stats)
    }
}

/// Streams canonical-encoding text into two independent accumulators
/// (FNV-1a and a rotate-multiply mix); 128 digest bits make accidental
/// state collisions negligible even for millions of states.
struct DigestWriter {
    a: u64,
    b: u64,
}

impl DigestWriter {
    fn new() -> Self {
        DigestWriter {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }
}

impl std::fmt::Write for DigestWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &byte in s.as_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x0100_0000_01b3);
            self.b = (self.b.rotate_left(5) ^ u64::from(byte)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        Ok(())
    }
}

/// One node in the schedule tree: the machine state plus the
/// path-accumulated observations reported at a terminal. Identity is the
/// 128-bit digest of the canonical state encoding, which excludes the
/// event log, spin counters, and absolute ticket numbers — and the
/// schedule `path`, which is derived bookkeeping (two different paths
/// reaching the same machine state must still deduplicate).
#[derive(Clone)]
struct SchedNode {
    kcore: KCore,
    cpus: Vec<CpuState>,
    ops_ok: usize,
    failures: Vec<(usize, &'static str, HypercallError)>,
    expectation_violations: Vec<String>,
    /// The sequence of CPU choices that reached this node from the
    /// root. Because [`SchedSpace::expand`] is deterministic (fixed
    /// step RNG seed), the path is a complete, compact, durable
    /// encoding of the node: replaying it from the initial state
    /// reconstructs the node bit-for-bit. This is what makes parked
    /// frontiers serializable ([`ScheduleResume::to_bytes`]) without
    /// ever encoding a `KCore`.
    path: Vec<u16>,
    digest: (u64, u64),
}

impl SchedNode {
    fn new(
        kcore: KCore,
        cpus: Vec<CpuState>,
        ops_ok: usize,
        failures: Vec<(usize, &'static str, HypercallError)>,
        expectation_violations: Vec<String>,
        path: Vec<u16>,
    ) -> Self {
        let mut w = DigestWriter::new();
        kcore.encode_state(&mut w);
        for c in &cpus {
            let _ = write!(w, "|{}", c.next_op);
            match &c.phase {
                Phase::Idle => {
                    let _ = w.write_str(",i");
                }
                Phase::Finished => {
                    let _ = w.write_str(",f");
                }
                Phase::Spinning { lock, ticket, .. } => {
                    let _ = write!(
                        w,
                        ",s{:?}@{}",
                        lock,
                        kcore.locks.get(*lock).position(*ticket)
                    );
                }
            }
            let _ = write!(w, ",{:?},{:?}", c.vm, c.held);
        }
        let _ = write!(w, "|{ops_ok}|{failures:?}|{expectation_violations:?}");
        SchedNode {
            digest: (w.a, w.b),
            kcore,
            cpus,
            ops_ok,
            failures,
            expectation_violations,
            path,
        }
    }

    /// The deterministic successor of this node when `cpu` takes the
    /// next step — the single transition function shared by
    /// [`SchedSpace::expand`] and the checkpoint path replay in
    /// [`ScheduleResume::from_bytes`], so a serialized frontier is
    /// reconstructed by the *same* code that built it live.
    fn step_once(&self, cpu: usize) -> SchedNode {
        let mut m = Machine {
            kcore: self.kcore.clone(),
            cpus: self.cpus.clone(),
            rng: StdRng::seed_from_u64(0),
        };
        let mut delta = RunReport {
            ops_ok: 0,
            failures: Vec::new(),
            expectation_violations: Vec::new(),
            steps: 0,
            total_spins: 0,
            stalled: false,
        };
        m.step(cpu, &mut delta);
        let mut failures = self.failures.clone();
        failures.extend(delta.failures);
        let mut violations = self.expectation_violations.clone();
        violations.extend(delta.expectation_violations);
        let mut path = self.path.clone();
        path.push(cpu as u16);
        SchedNode::new(
            m.kcore,
            m.cpus,
            self.ops_ok + delta.ops_ok,
            failures,
            violations,
            path,
        )
    }

    fn outcome(&self, stalled: bool) -> SchedOutcome {
        SchedOutcome {
            ops_ok: self.ops_ok,
            failures: self
                .failures
                .iter()
                .map(|(c, n, e)| format!("CPU{c} {n}: {e}"))
                .collect(),
            expectation_violations: self.expectation_violations.clone(),
            wdrf_violations: crate::wdrf::validate_log(&self.kcore.log)
                .iter()
                .map(|v| format!("{v:?}"))
                .collect(),
            stalled,
        }
    }
}

impl PartialEq for SchedNode {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest
    }
}

impl Eq for SchedNode {}

impl std::hash::Hash for SchedNode {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.digest.hash(h);
    }
}

/// The non-identity CPU permutations generated by groups of CPUs with
/// *identical scripts* — the machine's symmetry group. A CPU named by
/// index from any script (an [`Op::AttachVm`] `owner_cpu`) is pinned
/// out of its group: relabeling it would redirect the reference, so
/// the permuted run would not be an isomorphic relabeling. Empty when
/// there is no symmetry or the orbit exceeds [`symm::MAX_ORBIT`].
fn script_perms(scripts: &[Script]) -> Vec<Vec<usize>> {
    let mut referenced: BTreeSet<usize> = BTreeSet::new();
    for s in scripts {
        for op in s {
            if let Op::AttachVm { owner_cpu } = op {
                referenced.insert(*owner_cpu);
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, s) in scripts.iter().enumerate() {
        if referenced.contains(&i) {
            continue;
        }
        match groups.iter_mut().find(|g| scripts[g[0]] == *s) {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups.retain(|g| g.len() >= 2);
    symm::group_permutations(scripts.len(), &groups)
}

/// Replays `π ∘ path` from the workload's initial node. Because the
/// scripts inside each symmetry group are identical and
/// [`SchedNode::step_once`] is deterministic, the result is *exactly*
/// the reached node with CPU identities relabeled by `π` — including
/// its failure strings, event log, and digest — not an approximation
/// of it. This is the machine layer's canonicalization primitive: it
/// reuses the same replay determinism that makes checkpoints
/// serializable.
fn replay_permuted(root: &SchedNode, path: &[u16], perm: &[usize]) -> SchedNode {
    let mut node = root.clone();
    for &c in path {
        node = node.step_once(perm[usize::from(c)]);
    }
    node
}

/// The minimal-digest orbit member of `node` (when it is not `node`
/// itself) under the permutations in `perms`.
fn canon_node(root: &SchedNode, perms: &[Vec<usize>], node: &SchedNode) -> Option<SchedNode> {
    let mut best: Option<SchedNode> = None;
    for perm in perms {
        let img = replay_permuted(root, &node.path, perm);
        let best_digest = best.as_ref().map_or(node.digest, |b| b.digest);
        if img.digest < best_digest {
            best = Some(img);
        }
    }
    best
}

/// The other distinct members of `node`'s orbit under `perms`.
fn orbit_nodes(root: &SchedNode, perms: &[Vec<usize>], node: &SchedNode) -> Vec<SchedNode> {
    let mut out: Vec<SchedNode> = Vec::new();
    for perm in perms {
        let img = replay_permuted(root, &node.path, perm);
        if img.digest != node.digest && out.iter().all(|o| o.digest != img.digest) {
            out.push(img);
        }
    }
    out
}

struct SchedSpace {
    root: SchedNode,
    perms: Vec<Vec<usize>>,
}

impl SchedSpace {
    fn new(cfg: KCoreConfig, scripts: Vec<Script>) -> Self {
        let perms = script_perms(&scripts);
        let m = Machine::new(cfg, scripts, 0);
        let root = SchedNode::new(m.kcore, m.cpus, 0, Vec::new(), Vec::new(), Vec::new());
        SchedSpace { root, perms }
    }

    fn runnable(node: &SchedNode) -> Vec<usize> {
        (0..node.cpus.len())
            .filter(|&c| !matches!(node.cpus[c].phase, Phase::Finished))
            .collect()
    }
}

impl StateSpace for SchedSpace {
    type State = SchedNode;
    type Emit = SchedOutcome;

    fn initial(&self) -> Vec<SchedNode> {
        vec![self.root.clone()]
    }

    fn expand(&self, node: &SchedNode, sink: &mut Sink<SchedNode, SchedOutcome>) {
        let runnable = Self::runnable(node);
        if runnable.is_empty() {
            sink.emit(node.outcome(false));
            return;
        }
        let mut progressed = false;
        for cpu in runnable {
            let succ = node.step_once(cpu);
            if succ.digest != node.digest {
                progressed = true;
                sink.push(succ);
            }
        }
        if !progressed {
            // Every CPU is waiting on something that can never happen.
            sink.emit(node.outcome(true));
        }
    }
}

/// Symmetry-only reduction: `now`/`future` stay at their conservative
/// top defaults (every operation may touch the shared `KCore`, so no
/// sound independence is claimed and neither sleep sets nor ample
/// singletons ever prune), while `canon`/`orbit` collapse CPUs with
/// identical scripts via path replay. The global-stall emission —
/// every CPU steps to itself, a property no single `expand_proc` can
/// see — is recovered by the reduced drivers' dead-end delegation to
/// the whole-state [`StateSpace::expand`] above.
impl Deps for SchedSpace {
    fn enabled(&self, node: &SchedNode) -> Vec<usize> {
        Self::runnable(node)
    }

    fn expand_proc(&self, node: &SchedNode, p: usize, sink: &mut Sink<SchedNode, SchedOutcome>) {
        let succ = node.step_once(p);
        if succ.digest != node.digest {
            sink.push(succ);
        }
    }

    fn canon(&self, node: &SchedNode) -> Option<SchedNode> {
        canon_node(&self.root, &self.perms, node)
    }

    fn orbit(&self, node: &SchedNode) -> Vec<SchedNode> {
        orbit_nodes(&self.root, &self.perms, node)
    }
}

/// One concrete transition that failed to simulate the abstract
/// ownership machine: either its label replay hit an illegal abstract
/// step, the replayed abstract state disagreed with the projected
/// post-state, or the post-state violated abstract noninterference.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RefinementViolation {
    /// CPU that executed the offending operation.
    pub cpu: usize,
    /// Name of the operation (as in [`SchedOutcome`] failure strings).
    pub op: &'static str,
    /// Human-readable description from
    /// [`refine::check_transition`](crate::refine::check_transition).
    pub detail: String,
}

impl std::fmt::Display for RefinementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CPU{} {}: {}", self.cpu, self.op, self.detail)
    }
}

/// Everything [`Machine::check_refinement`] learned from the walk.
#[derive(Debug, Clone)]
pub struct RefinementReport {
    /// Every distinct terminal observation (identical to what
    /// [`Machine::explore_schedules`] would report for the same
    /// workload).
    pub outcomes: BTreeSet<SchedOutcome>,
    /// Every distinct simulation failure across all explored
    /// transitions; empty iff the implementation refines the spec on
    /// the explored prefix.
    pub violations: BTreeSet<RefinementViolation>,
    /// Enumeration counters.
    pub stats: ExploreStats,
}

impl RefinementReport {
    /// `true` iff no explored transition broke the simulation.
    ///
    /// Only meaningful when the walk was exhaustive; use
    /// [`verdict`](Self::verdict) for the sound three-valued answer.
    pub fn refines(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sound three-valued verdict: `Pass` only when the walk was
    /// exhaustive and violation-free, `Fail` on any violation, and
    /// `Unknown` with coverage when the walk was truncated while clean.
    pub fn verdict(&self) -> vrm_explore::Verdict {
        vrm_explore::Verdict::from_parts(self.refines(), &self.stats)
    }
}

enum RefineEmit {
    Outcome(SchedOutcome),
    Violation(RefinementViolation),
}

/// [`SchedSpace`] plus a per-transition refinement check: every executed
/// operation's pre/post pair is handed to
/// [`refine::check_transition`](crate::refine::check_transition) and any
/// failure is emitted through the sink. Violations are *not* part of the
/// node digest, so the walked graph is identical to `SchedSpace`'s.
struct RefineSpace {
    root: SchedNode,
    perms: Vec<Vec<usize>>,
}

impl RefineSpace {
    fn new(cfg: KCoreConfig, scripts: Vec<Script>) -> Self {
        let perms = script_perms(&scripts);
        let m = Machine::new(cfg, scripts, 0);
        let root = SchedNode::new(m.kcore, m.cpus, 0, Vec::new(), Vec::new(), Vec::new());
        RefineSpace { root, perms }
    }

    /// One CPU's transition with its refinement check: steps `cpu`,
    /// emits a [`RefineEmit::Violation`] for every simulation failure
    /// of the executed operation, and pushes the successor unless the
    /// step was a self-loop. Shared verbatim between the whole-state
    /// [`StateSpace::expand`] and the per-process [`Deps::expand_proc`]
    /// so the two drivers check exactly the same transitions.
    fn step_checked(
        &self,
        node: &SchedNode,
        cpu: usize,
        sink: &mut Sink<SchedNode, RefineEmit>,
    ) -> bool {
        let mut m = Machine {
            kcore: node.kcore.clone(),
            cpus: node.cpus.clone(),
            rng: StdRng::seed_from_u64(0),
        };
        let mut delta = RunReport {
            ops_ok: 0,
            failures: Vec::new(),
            expectation_violations: Vec::new(),
            steps: 0,
            total_spins: 0,
            stalled: false,
        };
        let pre_vm = node.cpus[cpu].vm;
        let pre_op = node.cpus[cpu].next_op;
        m.step(cpu, &mut delta);
        if delta.ops_ok + delta.failures.len() > 0 {
            let op = node.cpus[cpu].script[pre_op].clone();
            let ok = delta.failures.is_empty();
            for detail in crate::refine::check_transition(&node.kcore, pre_vm, &op, ok, &m.kcore) {
                sink.emit(RefineEmit::Violation(RefinementViolation {
                    cpu,
                    op: op_name(&op),
                    detail,
                }));
            }
        }
        let mut failures = node.failures.clone();
        failures.extend(delta.failures);
        let mut violations = node.expectation_violations.clone();
        violations.extend(delta.expectation_violations);
        let mut path = node.path.clone();
        path.push(cpu as u16);
        let succ = SchedNode::new(
            m.kcore,
            m.cpus,
            node.ops_ok + delta.ops_ok,
            failures,
            violations,
            path,
        );
        if succ.digest != node.digest {
            sink.push(succ);
            true
        } else {
            false
        }
    }
}

impl StateSpace for RefineSpace {
    type State = SchedNode;
    type Emit = RefineEmit;

    fn initial(&self) -> Vec<SchedNode> {
        vec![self.root.clone()]
    }

    fn expand(&self, node: &SchedNode, sink: &mut Sink<SchedNode, RefineEmit>) {
        let runnable = SchedSpace::runnable(node);
        if runnable.is_empty() {
            sink.emit(RefineEmit::Outcome(node.outcome(false)));
            return;
        }
        let mut progressed = false;
        for cpu in runnable {
            progressed |= self.step_checked(node, cpu, sink);
        }
        if !progressed {
            // Every CPU is waiting on something that can never happen.
            sink.emit(RefineEmit::Outcome(node.outcome(true)));
        }
    }
}

/// Same symmetry-only reduction as [`SchedSpace`]'s. One asymmetry of
/// *observation* (not of the walked graph): interior
/// [`RefineEmit::Violation`]s are checked at orbit representatives
/// only, so the reduced violation set is the unreduced one modulo CPU
/// relabeling — non-empty iff the unreduced set is, which is what the
/// refinement verdict consumes. Terminal outcomes are re-rendered for
/// the whole orbit and stay bit-identical.
impl Deps for RefineSpace {
    fn enabled(&self, node: &SchedNode) -> Vec<usize> {
        SchedSpace::runnable(node)
    }

    fn expand_proc(&self, node: &SchedNode, p: usize, sink: &mut Sink<SchedNode, RefineEmit>) {
        self.step_checked(node, p, sink);
    }

    fn canon(&self, node: &SchedNode) -> Option<SchedNode> {
        canon_node(&self.root, &self.perms, node)
    }

    fn orbit(&self, node: &SchedNode) -> Vec<SchedNode> {
        orbit_nodes(&self.root, &self.perms, node)
    }
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::RegisterVm => "register_vm",
        Op::RegisterVcpu => "register_vcpu",
        Op::StageImage { .. } => "stage_image",
        Op::VerifyImage => "verify_image",
        Op::RunQuantum { .. } => "run_quantum",
        Op::Fault { .. } => "handle_s2_fault",
        Op::Grant { .. } => "grant_page",
        Op::Revoke { .. } => "revoke_page",
        Op::VmWrite { .. } => "vm_write",
        Op::VmReadExpect { .. } => "vm_read",
        Op::KservRead { .. } => "kserv_read",
        Op::KservWrite { .. } => "kserv_write",
        Op::Reclaim => "reclaim",
        Op::AttachVm { .. } => "attach_vm",
        Op::VcpuBegin { .. } => "vcpu_begin",
        Op::VcpuEnd => "vcpu_end",
        Op::Rendezvous { .. } => "rendezvous",
        Op::SendIpi { .. } => "send_ipi",
        Op::UartWrite { .. } => "uart_write",
        Op::WaitIrq { .. } => "wait_irq",
    }
}

/// Builds a standard per-CPU "VM lifecycle" script: boot a VM, fault in
/// pages, write/read them, share and unshare one, and tear down.
pub fn lifecycle_script(cpu_index: u64, image_base_pfn: u64, data_pfn: u64) -> Script {
    let gpa_data = 64 * crate::layout::PAGE_WORDS;
    vec![
        Op::RegisterVm,
        Op::RegisterVcpu,
        Op::StageImage {
            pfns: vec![image_base_pfn, image_base_pfn + 1],
        },
        Op::VerifyImage,
        Op::RunQuantum { vcpu: 0 },
        Op::Fault {
            gpa: gpa_data,
            donor_pfn: data_pfn,
        },
        Op::VmWrite {
            gpa: gpa_data + 3,
            val: 1000 + cpu_index,
        },
        Op::VmReadExpect {
            gpa: gpa_data + 3,
            expect: 1000 + cpu_index,
        },
        Op::Grant { gpa: gpa_data },
        Op::Revoke { gpa: gpa_data },
        Op::RunQuantum { vcpu: 0 },
        Op::VmReadExpect {
            gpa: gpa_data + 3,
            expect: 1000 + cpu_index,
        },
        Op::Reclaim,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VM_POOL_PFN;

    fn scripts(n: usize) -> Vec<Script> {
        (0..n)
            .map(|i| {
                lifecycle_script(
                    i as u64,
                    VM_POOL_PFN.0 + (i as u64) * 8,
                    VM_POOL_PFN.0 + (i as u64) * 8 + 4,
                )
            })
            .collect()
    }

    #[test]
    fn four_cpu_lifecycle_is_clean() {
        let mut m = Machine::new(KCoreConfig::default(), scripts(4), 42);
        let report = m.run(1_000_000);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.ops_ok, 4 * 13);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = Machine::new(KCoreConfig::default(), scripts(3), seed);
            let r = m.run(1_000_000);
            (r.steps, r.total_spins, m.kcore.log.len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn schedule_resume_bytes_round_trip_identically() {
        let scripts = crate::workloads::by_name("unmap").expect("unmap workload");
        let small = ExhaustiveConfig {
            max_states: 40,
            jobs: 1,
            ..ExhaustiveConfig::default()
        };
        let full = ExhaustiveConfig {
            max_states: 1 << 16,
            jobs: 1,
            ..ExhaustiveConfig::default()
        };
        let starved =
            Machine::explore_schedules(KCoreConfig::default(), scripts.clone(), &small).unwrap();
        let parked = starved.resume.expect("a 40-state unmap walk is truncated");
        let bytes = parked.to_bytes().expect("own checkpoints serialize");
        let restored = ScheduleResume::from_bytes(KCoreConfig::default(), scripts.clone(), &bytes)
            .expect("round trip");
        assert_eq!(restored.frontier_len(), parked.frontier_len());
        assert_eq!(restored.states_visited(), parked.states_visited());
        // Resuming the in-memory checkpoint and the round-tripped one
        // must finish the walk with identical results — the byte form
        // is a faithful image, not an approximation.
        let a = Machine::explore_schedules_from(
            KCoreConfig::default(),
            scripts.clone(),
            &full,
            Some(parked),
        )
        .unwrap();
        let b = Machine::explore_schedules_from(
            KCoreConfig::default(),
            scripts.clone(),
            &full,
            Some(restored),
        )
        .unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.verdict(), b.verdict());
        // And both agree with a from-scratch exhaustive walk.
        let scratch = Machine::explore_schedules(KCoreConfig::default(), scripts, &full).unwrap();
        assert_eq!(a.outcomes, scratch.outcomes);
    }

    #[test]
    fn corrupt_resume_bytes_are_rejected_wholesale() {
        let scripts = crate::workloads::by_name("unmap").expect("unmap workload");
        let small = ExhaustiveConfig {
            max_states: 40,
            jobs: 1,
            ..ExhaustiveConfig::default()
        };
        let parked = Machine::explore_schedules(KCoreConfig::default(), scripts.clone(), &small)
            .unwrap()
            .resume
            .expect("truncated");
        let bytes = parked.to_bytes().expect("serialize");
        // A flipped byte anywhere in the body breaks the checksum; a
        // clipped tail breaks the declared length. Every corruption
        // must surface as CorruptCheckpoint, never a partial decode.
        for pos in [0, 8, bytes.len() / 2, bytes.len() - 17] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = ScheduleResume::from_bytes(KCoreConfig::default(), scripts.clone(), &bad)
                .expect_err("corrupt bytes accepted");
            assert!(
                matches!(err, vrm_explore::ExploreError::CorruptCheckpoint(_)),
                "{err:?}"
            );
        }
        let err =
            ScheduleResume::from_bytes(KCoreConfig::default(), scripts, &bytes[..bytes.len() - 3])
                .expect_err("truncated bytes accepted");
        assert!(
            matches!(err, vrm_explore::ExploreError::CorruptCheckpoint(_)),
            "{err:?}"
        );
    }

    #[test]
    fn resume_bytes_replayed_against_wrong_workload_are_rejected() {
        // A blob parked for one workload replays to different machine
        // states under another workload's scripts; the visited-digest
        // membership check must reject it instead of resuming a wrong
        // walk.
        let unmap = crate::workloads::by_name("unmap").expect("unmap workload");
        let small = ExhaustiveConfig {
            max_states: 40,
            jobs: 1,
            ..ExhaustiveConfig::default()
        };
        let parked = Machine::explore_schedules(KCoreConfig::default(), unmap, &small)
            .unwrap()
            .resume
            .expect("truncated");
        let bytes = parked.to_bytes().expect("serialize");
        let err = ScheduleResume::from_bytes(KCoreConfig::default(), scripts(4), &bytes)
            .expect_err("wrong-workload blob accepted");
        assert!(
            matches!(
                err,
                vrm_explore::ExploreError::CorruptCheckpoint(
                    vrm_explore::CheckpointFault::BadState
                )
            ),
            "{err:?}"
        );
    }

    #[test]
    fn vmids_unique_across_cpus() {
        let mut m = Machine::new(KCoreConfig::default(), scripts(8), 3);
        let report = m.run(2_000_000);
        assert!(report.clean(), "{report:?}");
        let mut vmids: Vec<u32> = (0..8).map(|c| m.cpu_vm(c).unwrap()).collect();
        vmids.sort_unstable();
        vmids.dedup();
        assert_eq!(vmids.len(), 8, "duplicate vmid handed out");
    }

    #[test]
    fn multiprocessor_vm_with_vcpu_migration() {
        // CPU 0 boots a 2-vCPU VM; CPU 1 adopts it. Both run vCPUs
        // concurrently, then *swap* vCPUs (migration), then contend for
        // the same vCPU — the ACTIVE/INACTIVE protocol must serialize
        // them without any failure.
        let gpa = 64 * crate::layout::PAGE_WORDS;
        let cpu0: Script = vec![
            Op::RegisterVm,
            Op::RegisterVcpu,
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::VmWrite { gpa, val: 7 },
            Op::Rendezvous { id: 1 },
            Op::VcpuBegin { vcpu: 0 },
            Op::VcpuEnd,
            // Migration: now run the vCPU the other CPU ran first.
            Op::VcpuBegin { vcpu: 1 },
            Op::VcpuEnd,
            // Contend on vCPU 0 with CPU 1.
            Op::VcpuBegin { vcpu: 0 },
            Op::VcpuEnd,
            // Virtual IPI to the vCPU the other CPU is handling.
            Op::SendIpi { to_vcpu: 1, irq: 5 },
            Op::Rendezvous { id: 2 },
            Op::Reclaim,
        ];
        let cpu1: Script = vec![
            Op::AttachVm { owner_cpu: 0 },
            Op::Rendezvous { id: 1 },
            Op::VcpuBegin { vcpu: 1 },
            Op::VcpuEnd,
            Op::VcpuBegin { vcpu: 0 },
            Op::VmReadExpect { gpa, expect: 7 },
            Op::VcpuEnd,
            Op::WaitIrq { vcpu: 1, irq: 5 },
            Op::Rendezvous { id: 2 },
        ];
        for seed in 0..12 {
            let mut m = Machine::new(
                KCoreConfig::default(),
                vec![cpu0.clone(), cpu1.clone()],
                seed,
            );
            let report = m.run(2_000_000);
            assert!(report.clean(), "seed {seed}: {report:?}");
            // Every vCPU saw multiple run/stop generations.
            let vm = m.kcore.vm(0).unwrap();
            let g0 = vm.vcpus[0].ctx.generation;
            let g1 = vm.vcpus[1].ctx.generation;
            assert_eq!(g0 + g1, 5, "seed {seed}: generations {g0}+{g1}");
            // Simulated guest progress accumulated across CPUs.
            assert_eq!(vm.vcpus[0].ctx.regs[0] + vm.vcpus[1].ctx.regs[0], 5);
            assert!(crate::wdrf::validate_log(&m.kcore.log).is_empty());
        }
    }

    #[test]
    fn deadlocked_rendezvous_is_detected() {
        // CPU 0 waits at a barrier CPU 1 can never reach (it waits for a
        // VM that is never verified): the machine must report a stall
        // instead of spinning to the step limit.
        let cpu0: Script = vec![Op::Rendezvous { id: 9 }];
        let cpu1: Script = vec![Op::AttachVm { owner_cpu: 0 }, Op::Rendezvous { id: 9 }];
        let mut m = Machine::new(KCoreConfig::default(), vec![cpu0, cpu1], 3);
        let report = m.run(10_000_000);
        assert!(report.stalled);
        assert!(!report.clean());
        assert!(report.steps < 10_000_000);
    }

    #[test]
    fn exhaustive_two_cpu_registration_is_clean_on_every_schedule() {
        // All interleavings of two CPUs contending on the VmId lock
        // complete cleanly and produce the same observable outcome.
        let scripts: Vec<Script> = (0..2).map(|_| vec![Op::RegisterVm]).collect();
        let report = Machine::explore_schedules(
            KCoreConfig::default(),
            scripts,
            &ExhaustiveConfig::default(),
        )
        .unwrap();
        assert!(report.all_clean(), "{:?}", report.outcomes);
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes.iter().all(|o| o.ops_ok == 2));
        assert!(report.stats.states > 2, "expected real branching");
    }

    #[test]
    fn exhaustive_detects_deadlock_on_every_schedule() {
        // The stalled-rendezvous machine from the seeded test: every
        // schedule must dead-end, and exhaustive mode must say so.
        let cpu0: Script = vec![Op::Rendezvous { id: 9 }];
        let cpu1: Script = vec![Op::AttachVm { owner_cpu: 0 }, Op::Rendezvous { id: 9 }];
        let report = Machine::explore_schedules(
            KCoreConfig::default(),
            vec![cpu0, cpu1],
            &ExhaustiveConfig::default(),
        )
        .unwrap();
        assert!(!report.outcomes.is_empty());
        assert!(report.outcomes.iter().all(|o| o.stalled));
        assert!(!report.all_clean());
    }

    #[test]
    fn exhaustive_parallel_matches_sequential() {
        let scripts = |n: usize| -> Vec<Script> {
            (0..n)
                .map(|_| vec![Op::RegisterVm, Op::RegisterVcpu])
                .collect()
        };
        let run = |jobs: usize| {
            Machine::explore_schedules(
                KCoreConfig::default(),
                scripts(3),
                &ExhaustiveConfig {
                    max_states: 1 << 20,
                    jobs,
                    ..ExhaustiveConfig::default()
                },
            )
            .unwrap()
        };
        let seq = run(1);
        for jobs in [2, 4] {
            assert_eq!(seq.outcomes, run(jobs).outcomes, "jobs={jobs}");
        }
    }

    #[test]
    fn exhaustive_state_limit_degrades_to_unknown() {
        // Hitting the state budget is no longer an error: the walk
        // returns its partial outcomes and the verdict must be Unknown
        // with nonzero coverage — never pass/fail.
        let scripts: Vec<Script> = (0..2).map(|_| vec![Op::RegisterVm]).collect();
        let report = Machine::explore_schedules(
            KCoreConfig::default(),
            scripts,
            &ExhaustiveConfig {
                max_states: 2,
                jobs: 1,
                ..ExhaustiveConfig::default()
            },
        )
        .unwrap();
        assert!(report.stats.completeness.is_truncated());
        match report.verdict() {
            vrm_explore::Verdict::Unknown { coverage } => {
                assert!(coverage.states > 0, "{coverage}");
                assert!(coverage.frontier_len > 0, "{coverage}");
            }
            v => panic!("truncated walk must be Unknown, got {v}"),
        }
    }

    #[test]
    fn truncated_schedules_resume_without_restarting() {
        // A starved run parks a ScheduleResume in its report; feeding it
        // back with a real budget must complete the walk exploring only
        // fresh states, and the unioned result must equal a from-scratch
        // exhaustive run.
        let scripts = || -> Vec<Script> { (0..2).map(|_| vec![Op::RegisterVm]).collect() };
        let full = Machine::explore_schedules(
            KCoreConfig::default(),
            scripts(),
            &ExhaustiveConfig::default(),
        )
        .unwrap();
        let starved = Machine::explore_schedules(
            KCoreConfig::default(),
            scripts(),
            &ExhaustiveConfig {
                max_states: 2,
                jobs: 1,
                ..ExhaustiveConfig::default()
            },
        )
        .unwrap();
        assert!(starved.stats.completeness.is_truncated());
        let resume = starved.resume.expect("truncated run must park a resume");
        assert!(resume.frontier_len() > 0);
        let starved_states = starved.stats.states;
        let resumed = Machine::explore_schedules_from(
            KCoreConfig::default(),
            scripts(),
            &ExhaustiveConfig::default(),
            Some(resume),
        )
        .unwrap();
        assert!(resumed.stats.completeness.is_exhaustive());
        assert!(resumed.resume.is_none());
        assert_eq!(resumed.outcomes, full.outcomes);
        assert!(matches!(resumed.verdict(), vrm_explore::Verdict::Pass));
        // Summed states across both attempts equal the from-scratch
        // count: nothing was revisited and nothing was lost.
        assert_eq!(resumed.stats.states, full.stats.states);
        assert!(starved_states < full.stats.states);
    }

    #[test]
    fn resilient_exploration_escalates_to_exhaustive() {
        // Start with a starved budget; the escalating retry doubles it
        // (resuming from the checkpoint) until the walk completes, and
        // the final verdict is a real Pass.
        let scripts: Vec<Script> = (0..2).map(|_| vec![Op::RegisterVm]).collect();
        let report = Machine::explore_schedules_resilient(
            KCoreConfig::default(),
            scripts,
            &ExhaustiveConfig {
                max_states: 2,
                jobs: 1,
                ..ExhaustiveConfig::default()
            },
            16,
        )
        .unwrap();
        assert!(report.stats.completeness.is_exhaustive());
        assert!(matches!(report.verdict(), vrm_explore::Verdict::Pass));
        assert!(report.all_clean(), "{:?}", report.outcomes);
    }

    #[test]
    fn contention_is_observed() {
        // All CPUs hammer the same *shared* VM? Simpler: they all contend
        // on the global VmId lock at the same time.
        let scripts: Vec<Script> = (0..6).map(|_| vec![Op::RegisterVm]).collect();
        let mut m = Machine::new(KCoreConfig::default(), scripts, 11);
        let report = m.run(100_000);
        assert!(report.clean());
        assert!(report.total_spins > 0, "expected lock contention");
    }
}
