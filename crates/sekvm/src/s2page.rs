//! Per-page ownership tracking (the `s2page` array, §5.3).
//!
//! "KCore tracks the owner of each 4 KB physical page of memory in an
//! s2page data structure. A page can only have one owner at any given
//! time, which can be KCore, KServ, or a VM. KCore will always check that
//! it is not the owner of a physical page before mapping it to a stage 2
//! or SMMU page table."

use crate::layout::{self, MAX_PFN};

/// The owner of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Owner {
    /// KCore private (never mappable into stage-2/SMMU tables).
    KCore,
    /// The untrusted host.
    KServ,
    /// A guest VM.
    Vm(u32),
}

/// Per-page metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S2Page {
    /// Current owner.
    pub owner: Owner,
    /// Shared with KServ (grant/revoke for paravirtual I/O).
    pub shared: bool,
    /// Mapping count (how many stage-2/SMMU leaf entries reference it).
    pub map_count: u32,
}

/// Errors from ownership transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnershipError {
    /// Page number out of range.
    BadPfn,
    /// The page's current owner does not match the expected owner.
    WrongOwner {
        /// Observed owner.
        actual: Owner,
    },
    /// The page is still mapped somewhere.
    StillMapped,
    /// The page is KCore-private and may never be given away.
    KCorePrivate,
}

impl std::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnershipError::BadPfn => write!(f, "page frame number out of range"),
            OwnershipError::WrongOwner { actual } => {
                write!(f, "unexpected page owner {actual:?}")
            }
            OwnershipError::StillMapped => write!(f, "page is still mapped"),
            OwnershipError::KCorePrivate => write!(f, "KCore-private pages are not transferable"),
        }
    }
}

impl std::error::Error for OwnershipError {}

/// The ownership array.
#[derive(Debug, Clone)]
pub struct S2PageArray {
    pages: Vec<S2Page>,
}

impl Default for S2PageArray {
    fn default() -> Self {
        Self::new()
    }
}

impl S2PageArray {
    /// Creates the array with the boot-time layout: KCore private regions
    /// owned by KCore, everything else by KServ.
    pub fn new() -> Self {
        let pages = (0..MAX_PFN)
            .map(|pfn| S2Page {
                owner: if layout::is_kcore_private(pfn) {
                    Owner::KCore
                } else {
                    Owner::KServ
                },
                shared: false,
                map_count: 0,
            })
            .collect();
        S2PageArray { pages }
    }

    /// Reads a page's metadata.
    pub fn get(&self, pfn: u64) -> Result<S2Page, OwnershipError> {
        self.pages
            .get(pfn as usize)
            .copied()
            .ok_or(OwnershipError::BadPfn)
    }

    /// The owner of a page.
    pub fn owner(&self, pfn: u64) -> Result<Owner, OwnershipError> {
        Ok(self.get(pfn)?.owner)
    }

    /// Transfers ownership, checking the expected current owner.
    pub fn transfer(&mut self, pfn: u64, expect: Owner, to: Owner) -> Result<(), OwnershipError> {
        let page = self.get(pfn)?;
        if page.owner == Owner::KCore && to != Owner::KCore {
            return Err(OwnershipError::KCorePrivate);
        }
        if page.owner != expect {
            return Err(OwnershipError::WrongOwner { actual: page.owner });
        }
        if page.map_count > 0 {
            return Err(OwnershipError::StillMapped);
        }
        let p = &mut self.pages[pfn as usize];
        p.owner = to;
        p.shared = false;
        Ok(())
    }

    /// Marks a page shared (or unshared) with KServ.
    pub fn set_shared(&mut self, pfn: u64, shared: bool) -> Result<(), OwnershipError> {
        self.get(pfn)?;
        self.pages[pfn as usize].shared = shared;
        Ok(())
    }

    /// Notes one more stage-2/SMMU mapping of this page.
    pub fn inc_map(&mut self, pfn: u64) -> Result<(), OwnershipError> {
        self.get(pfn)?;
        self.pages[pfn as usize].map_count += 1;
        Ok(())
    }

    /// Notes one fewer mapping.
    pub fn dec_map(&mut self, pfn: u64) -> Result<(), OwnershipError> {
        let p = self.get(pfn)?;
        if p.map_count == 0 {
            return Err(OwnershipError::StillMapped);
        }
        self.pages[pfn as usize].map_count -= 1;
        Ok(())
    }

    /// All pages owned by a given principal.
    pub fn owned_by(&self, owner: Owner) -> Vec<u64> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.owner == owner)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_layout_ownership() {
        let a = S2PageArray::new();
        assert_eq!(a.owner(0).unwrap(), Owner::KCore);
        assert_eq!(a.owner(layout::S2_POOL_PFN.0).unwrap(), Owner::KCore);
        assert_eq!(a.owner(layout::KSERV_PFN.0).unwrap(), Owner::KServ);
        assert_eq!(a.owner(layout::VM_POOL_PFN.0).unwrap(), Owner::KServ);
    }

    #[test]
    fn transfer_checks_expected_owner() {
        let mut a = S2PageArray::new();
        let pfn = layout::VM_POOL_PFN.0;
        assert_eq!(
            a.transfer(pfn, Owner::Vm(1), Owner::Vm(2)),
            Err(OwnershipError::WrongOwner {
                actual: Owner::KServ
            })
        );
        a.transfer(pfn, Owner::KServ, Owner::Vm(1)).unwrap();
        assert_eq!(a.owner(pfn).unwrap(), Owner::Vm(1));
    }

    #[test]
    fn kcore_pages_are_never_transferable() {
        let mut a = S2PageArray::new();
        assert_eq!(
            a.transfer(0, Owner::KCore, Owner::KServ),
            Err(OwnershipError::KCorePrivate)
        );
    }

    #[test]
    fn mapped_pages_cannot_change_owner() {
        let mut a = S2PageArray::new();
        let pfn = layout::VM_POOL_PFN.0;
        a.inc_map(pfn).unwrap();
        assert_eq!(
            a.transfer(pfn, Owner::KServ, Owner::Vm(1)),
            Err(OwnershipError::StillMapped)
        );
        a.dec_map(pfn).unwrap();
        a.transfer(pfn, Owner::KServ, Owner::Vm(1)).unwrap();
    }

    #[test]
    fn bad_pfn_rejected() {
        let a = S2PageArray::new();
        assert_eq!(a.owner(MAX_PFN), Err(OwnershipError::BadPfn));
    }
}
