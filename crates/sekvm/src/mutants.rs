//! The mutant suite: deliberately broken KCore variants.
//!
//! The paper's argument is only convincing if the checks would *fail* on
//! incorrect code. Each mutant disables one safeguard; the accompanying
//! expectation names the validator that must catch it. Tests in
//! [`wdrf`](crate::wdrf), [`security`](crate::security), and the
//! integration suite iterate [`all`].

use crate::kcore::KCoreConfig;

/// Which validator is expected to reject a mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaughtBy {
    /// `wdrf::validate_log` (Sequential-TLB-Invalidation).
    SequentialTlbi,
    /// `wdrf::validate_log` (DRF-Kernel lock discipline, conditions 1/2).
    LockDiscipline,
    /// `security::check_invariants` (ownership mapping invariants).
    SecurityInvariants,
    /// `Machine::check_refinement` (the concrete transition does not
    /// project to a legal abstract step — including the scrub and
    /// image-authentication data oracles).
    Refinement,
}

/// A named broken configuration.
#[derive(Debug, Clone, Copy)]
pub struct Mutant {
    /// Name for reporting.
    pub name: &'static str,
    /// The broken configuration.
    pub cfg: KCoreConfig,
    /// The validator expected to catch it.
    pub caught_by: CaughtBy,
}

/// All mutants.
pub fn all() -> Vec<Mutant> {
    vec![
        Mutant {
            name: "skip-tlbi-on-unmap",
            cfg: KCoreConfig {
                skip_tlbi_on_unmap: true,
                ..Default::default()
            },
            caught_by: CaughtBy::SequentialTlbi,
        },
        Mutant {
            name: "skip-barrier-before-tlbi",
            cfg: KCoreConfig {
                skip_barrier_before_tlbi: true,
                ..Default::default()
            },
            caught_by: CaughtBy::SequentialTlbi,
        },
        Mutant {
            name: "skip-ownership-check",
            cfg: KCoreConfig {
                skip_ownership_check: true,
                ..Default::default()
            },
            caught_by: CaughtBy::SecurityInvariants,
        },
        Mutant {
            name: "skip-scrub-on-reclaim",
            cfg: KCoreConfig {
                skip_scrub_on_reclaim: true,
                ..Default::default()
            },
            caught_by: CaughtBy::Refinement,
        },
        Mutant {
            name: "skip-lock-acquire",
            cfg: KCoreConfig {
                skip_lock_acquire: true,
                ..Default::default()
            },
            caught_by: CaughtBy::LockDiscipline,
        },
        Mutant {
            name: "barrier-after-tlbi",
            cfg: KCoreConfig {
                barrier_after_tlbi: true,
                ..Default::default()
            },
            caught_by: CaughtBy::SequentialTlbi,
        },
        Mutant {
            name: "reclaim-leaks-ownership",
            cfg: KCoreConfig {
                reclaim_leaks_ownership: true,
                ..Default::default()
            },
            caught_by: CaughtBy::Refinement,
        },
        Mutant {
            name: "revoke-keeps-share",
            cfg: KCoreConfig {
                revoke_keeps_share: true,
                ..Default::default()
            },
            caught_by: CaughtBy::Refinement,
        },
        Mutant {
            name: "revoke-skips-unmap",
            cfg: KCoreConfig {
                revoke_skips_unmap: true,
                ..Default::default()
            },
            caught_by: CaughtBy::Refinement,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_enumerate_distinct_flags() {
        let ms = all();
        assert_eq!(ms.len(), 9);
        let names: std::collections::BTreeSet<_> = ms.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), ms.len());
        // Each mutant differs from the default in exactly one switch.
        for m in &ms {
            let d = KCoreConfig::default();
            let diffs = [
                m.cfg.skip_tlbi_on_unmap != d.skip_tlbi_on_unmap,
                m.cfg.skip_barrier_before_tlbi != d.skip_barrier_before_tlbi,
                m.cfg.skip_ownership_check != d.skip_ownership_check,
                m.cfg.skip_scrub_on_reclaim != d.skip_scrub_on_reclaim,
                m.cfg.skip_lock_acquire != d.skip_lock_acquire,
                m.cfg.barrier_after_tlbi != d.barrier_after_tlbi,
                m.cfg.reclaim_leaks_ownership != d.reclaim_leaks_ownership,
                m.cfg.revoke_keeps_share != d.revoke_keeps_share,
                m.cfg.revoke_skips_unmap != d.revoke_skips_unmap,
            ]
            .iter()
            .filter(|&&x| x)
            .count();
            assert_eq!(diffs, 1, "{} flips {diffs} switches", m.name);
        }
    }
}
