//! SMMU page tables: `set_spt` and `clear_spt` (§5.4–5.5).
//!
//! DMA-capable devices translate through per-device SMMU tables that
//! KCore manages exactly like stage-2 tables, except pages come from the
//! SMMU pool and invalidations are SMMU TLB invalidations. The proofs (and
//! here, the code paths) are shared with [`npt`](crate::npt).

use vrm_memmodel::ir::Addr;
use vrm_mmu::mem::PhysMem;
use vrm_mmu::pool::PagePool;
use vrm_mmu::pte::Perms;
use vrm_mmu::table::Geometry;

use crate::events::{Log, TableKind};
use crate::npt::{S2Behaviour, S2Error, Stage2};
use crate::s2page::Owner;

/// One SMMU-attached device's translation state.
#[derive(Debug, Clone)]
pub struct SmmuDevice {
    /// Device id.
    pub dev: u32,
    /// The principal this device is assigned to (DMA on behalf of).
    pub assigned_to: Owner,
    table: Stage2,
}

impl SmmuDevice {
    /// Creates the device's SMMU table (assigned to KServ by default).
    pub fn new(mem: &mut PhysMem, pool: &mut PagePool, dev: u32) -> Option<Self> {
        let table = Stage2::new(mem, pool, TableKind::Smmu(dev), Geometry::arm_3level())?;
        Some(SmmuDevice {
            dev,
            assigned_to: Owner::KServ,
            table,
        })
    }

    /// `set_spt`: maps `iova -> pa` for this device.
    #[allow(clippy::too_many_arguments)]
    pub fn set_spt(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        log: &mut Log,
        cpu: usize,
        behaviour: S2Behaviour,
        iova: Addr,
        pa: Addr,
    ) -> Result<(), S2Error> {
        self.table
            .set_spt_inner(mem, pool, log, cpu, behaviour, iova, pa)
    }

    /// `clear_spt`: unmaps `iova`, then (barrier, SMMU TLBI).
    pub fn clear_spt(
        &self,
        mem: &mut PhysMem,
        pool: &PagePool,
        log: &mut Log,
        cpu: usize,
        behaviour: S2Behaviour,
        iova: Addr,
    ) -> Result<(), S2Error> {
        self.table.clear_s2pt(mem, pool, log, cpu, behaviour, iova)
    }

    /// Translates a device IOVA (what a DMA access would target).
    pub fn translate(&self, mem: &PhysMem, iova: Addr) -> Option<Addr> {
        self.table.translate(mem, iova)
    }

    /// Translates and returns the leaf permissions.
    pub fn translate_with_perms(
        &self,
        mem: &PhysMem,
        iova: Addr,
    ) -> Option<(Addr, vrm_mmu::pte::Perms)> {
        self.table.translate_with_perms(mem, iova)
    }

    /// Current mappings (invariant checks).
    pub fn mappings(&self, mem: &PhysMem) -> Vec<vrm_mmu::table::Mapping> {
        self.table.mappings(mem)
    }
}

impl Stage2 {
    /// SMMU mappings are device DMA mappings: read-write, never exec.
    #[allow(clippy::too_many_arguments)]
    fn set_spt_inner(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        log: &mut Log,
        cpu: usize,
        behaviour: S2Behaviour,
        iova: Addr,
        pa: Addr,
    ) -> Result<(), S2Error> {
        self.set_s2pt(mem, pool, log, cpu, behaviour, iova, pa, Perms::RW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MEvent;
    use crate::layout::{page_addr, PAGE_WORDS, SMMU_POOL_PFN};

    fn setup() -> (PhysMem, PagePool, SmmuDevice) {
        let mut mem = PhysMem::new();
        let mut pool = PagePool::new(
            &mut mem,
            page_addr(SMMU_POOL_PFN.0),
            PAGE_WORDS,
            SMMU_POOL_PFN.1 - SMMU_POOL_PFN.0,
        );
        let dev = SmmuDevice::new(&mut mem, &mut pool, 0).unwrap();
        (mem, pool, dev)
    }

    #[test]
    fn dma_translation_roundtrip() {
        let (mut mem, mut pool, dev) = setup();
        let mut log = Log::new();
        let b = S2Behaviour {
            check_transactional: true,
            ..Default::default()
        };
        dev.set_spt(&mut mem, &mut pool, &mut log, 0, b, 0, page_addr(0x900))
            .unwrap();
        assert_eq!(dev.translate(&mem, 7), Some(page_addr(0x900) + 7));
        dev.clear_spt(&mut mem, &pool, &mut log, 0, b, 0).unwrap();
        assert_eq!(dev.translate(&mem, 7), None);
        // SMMU TLBI attributed to the right table.
        assert!(log.iter().any(|e| matches!(
            e,
            MEvent::Tlbi {
                table: TableKind::Smmu(0),
                ..
            }
        )));
    }
}
