//! The simulated physical memory map.
//!
//! Word-granular addresses, 512-word pages. Page *numbers* (pfn) index the
//! `s2page` ownership array; `page_addr` converts to word addresses.

use vrm_memmodel::ir::Addr;

/// Words per page (the model's "4 KB").
pub const PAGE_WORDS: u64 = 512;

/// log2 of [`PAGE_WORDS`].
pub const PAGE_BITS: u32 = 9;

/// Total physical pages tracked by the s2page array.
pub const MAX_PFN: u64 = 0x4000; // 16K pages

/// KCore's private code/data pages.
pub const KCORE_PFN: (u64, u64) = (0x0000, 0x0100);

/// Pool for KCore's own (EL2) page table pages.
pub const EL2_POOL_PFN: (u64, u64) = (0x0100, 0x0180);

/// Pool for stage-2 page-table pages (KServ + VMs).
pub const S2_POOL_PFN: (u64, u64) = (0x0180, 0x0400);

/// Pool for SMMU page-table pages.
pub const SMMU_POOL_PFN: (u64, u64) = (0x0400, 0x0480);

/// KServ (host Linux) memory.
pub const KSERV_PFN: (u64, u64) = (0x0800, 0x1800);

/// Donatable VM memory pool (owned by KServ until assigned to a VM).
pub const VM_POOL_PFN: (u64, u64) = (0x1800, 0x4000);

/// Maximum number of VMs (`MAX_VM` in Figure 1).
pub const MAX_VMS: u32 = 16;

/// Maximum vCPUs per VM.
pub const MAX_VCPUS: u32 = 8;

/// Maximum SMMU-attached devices.
pub const MAX_DEVICES: u32 = 8;

/// The EL2 virtual address where KCore's boot-time linear map starts
/// (identity plus this offset, like the kernel's linear map).
pub const EL2_LINEAR_BASE: Addr = 0x100_0000;

/// EL2 virtual region used by `remap_pfn` for VM-image authentication
/// (outside the linear map).
pub const EL2_REMAP_BASE: Addr = 0x800_0000;

/// Converts a page number to its base word address.
pub fn page_addr(pfn: u64) -> Addr {
    pfn * PAGE_WORDS
}

/// Converts a word address to its page number.
pub fn pfn_of(addr: Addr) -> u64 {
    addr / PAGE_WORDS
}

/// Is the pfn inside a half-open pfn range?
pub fn pfn_in(pfn: u64, range: (u64, u64)) -> bool {
    pfn >= range.0 && pfn < range.1
}

/// Is the pfn part of KCore's private memory (code/data or any page-table
/// pool)?
pub fn is_kcore_private(pfn: u64) -> bool {
    pfn_in(pfn, KCORE_PFN)
        || pfn_in(pfn, EL2_POOL_PFN)
        || pfn_in(pfn, S2_POOL_PFN)
        || pfn_in(pfn, SMMU_POOL_PFN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let regions = [
            KCORE_PFN,
            EL2_POOL_PFN,
            S2_POOL_PFN,
            SMMU_POOL_PFN,
            KSERV_PFN,
            VM_POOL_PFN,
        ];
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "{w:?} overlap");
        }
        assert!(VM_POOL_PFN.1 <= MAX_PFN);
    }

    #[test]
    fn addr_pfn_roundtrip() {
        assert_eq!(page_addr(3), 3 * PAGE_WORDS);
        assert_eq!(pfn_of(page_addr(3) + 17), 3);
    }

    #[test]
    fn kcore_private_classification() {
        assert!(is_kcore_private(0));
        assert!(is_kcore_private(EL2_POOL_PFN.0));
        assert!(is_kcore_private(S2_POOL_PFN.0));
        assert!(!is_kcore_private(KSERV_PFN.0));
        assert!(!is_kcore_private(VM_POOL_PFN.0));
    }
}
