//! Stage-2 (nested) page tables: `set_s2pt` and `clear_s2pt` (§5.4–5.5).
//!
//! One stage-2 tree per principal (KServ and each VM), built from the
//! shared scrubbed pool. `set_s2pt` performs the walk-allocate-set
//! procedure inside the caller's critical section and never overwrites;
//! `clear_s2pt` zeroes one existing leaf and must be followed by a barrier
//! and a TLB invalidation (Sequential-TLB-Invalidation), which this module
//! emits — unless a mutant suppresses them.
//!
//! Every update optionally validates the Transactional-Page-Table
//! condition on exactly the writes it performed, against the table state
//! at critical-section entry.

use vrm_memmodel::ir::Addr;
use vrm_mmu::mem::PhysMem;
use vrm_mmu::pool::PagePool;
use vrm_mmu::pte::Perms;
use vrm_mmu::table::{Geometry, MapError, PageTable, WalkOutcome};
use vrm_mmu::transactional::{check_writes_transactional, TxViolation};

use crate::events::{Log, MEvent, TableKind};

/// Errors from stage-2 updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S2Error {
    /// Underlying table operation failed.
    Map(MapError),
    /// The operation's writes were not transactional (condition 4).
    NotTransactional(Box<TxViolation>),
}

impl std::fmt::Display for S2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            S2Error::Map(e) => write!(f, "table update failed: {e}"),
            S2Error::NotTransactional(v) => {
                write!(f, "non-transactional page-table update: {v:?}")
            }
        }
    }
}

impl std::error::Error for S2Error {}

impl From<MapError> for S2Error {
    fn from(e: MapError) -> Self {
        S2Error::Map(e)
    }
}

/// Behaviour switches used by the mutant suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct S2Behaviour {
    /// Skip the TLBI after unmap (breaks condition 5).
    pub skip_tlbi: bool,
    /// Skip the barrier before the TLBI (breaks condition 5).
    pub skip_barrier: bool,
    /// Emit the barrier after the TLBI instead of before it (breaks
    /// condition 5: the invalidate may complete before the unmap write
    /// is visible).
    pub barrier_after_tlbi: bool,
    /// Validate condition 4 on every update.
    pub check_transactional: bool,
}

/// One principal's stage-2 table.
#[derive(Debug, Clone)]
pub struct Stage2 {
    /// Which tree this is (for event attribution).
    pub kind: TableKind,
    pt: PageTable,
}

impl Stage2 {
    /// Allocates a fresh root from the pool.
    pub fn new(
        mem: &mut PhysMem,
        pool: &mut PagePool,
        kind: TableKind,
        geo: Geometry,
    ) -> Option<Self> {
        let root = pool.alloc(mem)?;
        Some(Stage2 {
            kind,
            pt: PageTable::new(root, geo),
        })
    }

    /// Translates a guest/intermediate physical address.
    pub fn translate(&self, mem: &PhysMem, gpa: Addr) -> Option<Addr> {
        match self.pt.walk(mem, gpa) {
            WalkOutcome::Mapped { pa, .. } => Some(pa),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// Translates and returns the leaf permissions.
    pub fn translate_with_perms(&self, mem: &PhysMem, gpa: Addr) -> Option<(Addr, Perms)> {
        match self.pt.walk(mem, gpa) {
            WalkOutcome::Mapped { pa, perms, .. } => Some((pa, perms)),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// `set_s2pt`: establishes `gpa -> pa` (page granularity).
    #[allow(clippy::too_many_arguments)]
    pub fn set_s2pt(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        log: &mut Log,
        cpu: usize,
        behaviour: S2Behaviour,
        gpa: Addr,
        pa: Addr,
        perms: Perms,
    ) -> Result<(), S2Error> {
        let before = self.pt_snapshot(mem, pool);
        let writes = self.pt.map(mem, pool, gpa, pa, perms)?;
        for &(cell, new) in &writes {
            log.push(MEvent::PtWrite {
                cpu,
                table: self.kind,
                cell,
                old: before.read(cell),
                new,
            });
        }
        if behaviour.check_transactional {
            check_writes_transactional(&self.pt, &before, &writes, &[gpa])
                .map_err(|v| S2Error::NotTransactional(Box::new(v)))?;
        }
        Ok(())
    }

    /// `clear_s2pt`: unmaps `gpa`, then (barrier, TLBI).
    pub fn clear_s2pt(
        &self,
        mem: &mut PhysMem,
        pool: &PagePool,
        log: &mut Log,
        cpu: usize,
        behaviour: S2Behaviour,
        gpa: Addr,
    ) -> Result<(), S2Error> {
        let before = self.pt_snapshot(mem, pool);
        let writes = self.pt.unmap(mem, gpa)?;
        for &(cell, new) in &writes {
            log.push(MEvent::PtWrite {
                cpu,
                table: self.kind,
                cell,
                old: before.read(cell),
                new,
            });
        }
        let barrier = !behaviour.skip_barrier && !behaviour.skip_tlbi;
        if barrier && !behaviour.barrier_after_tlbi {
            log.push(MEvent::Barrier { cpu });
        }
        if !behaviour.skip_tlbi {
            log.push(MEvent::Tlbi {
                cpu,
                table: self.kind,
                vpn: Some(self.pt.geo.vpn(gpa)),
            });
        }
        if barrier && behaviour.barrier_after_tlbi {
            log.push(MEvent::Barrier { cpu });
        }
        if behaviour.check_transactional {
            check_writes_transactional(&self.pt, &before, &writes, &[gpa])
                .map_err(|v| S2Error::NotTransactional(Box::new(v)))?;
        }
        Ok(())
    }

    /// All current mappings (for invariant checks).
    pub fn mappings(&self, mem: &PhysMem) -> Vec<vrm_mmu::table::Mapping> {
        self.pt.mappings(mem)
    }

    /// The root cell (for snapshot ranges).
    pub fn root(&self) -> Addr {
        self.pt.root
    }

    /// The geometry.
    pub fn geometry(&self) -> Geometry {
        self.pt.geo
    }

    fn pt_snapshot(&self, mem: &PhysMem, pool: &PagePool) -> PhysMem {
        mem.clone_ranges(&[
            pool.range(),
            (self.pt.root, self.pt.root + self.pt.geo.page_words()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{page_addr, PAGE_WORDS, S2_POOL_PFN};

    fn setup(levels: u32) -> (PhysMem, PagePool, Stage2) {
        let mut mem = PhysMem::new();
        let mut pool = PagePool::new(
            &mut mem,
            page_addr(S2_POOL_PFN.0),
            PAGE_WORDS,
            S2_POOL_PFN.1 - S2_POOL_PFN.0,
        );
        let geo = if levels == 3 {
            Geometry::arm_3level()
        } else {
            Geometry::arm_4level()
        };
        let s2 = Stage2::new(&mut mem, &mut pool, TableKind::Stage2(Some(1)), geo).unwrap();
        (mem, pool, s2)
    }

    fn behaviour() -> S2Behaviour {
        S2Behaviour {
            check_transactional: true,
            ..Default::default()
        }
    }

    #[test]
    fn set_clear_roundtrip_3level() {
        let (mut mem, mut pool, s2) = setup(3);
        let mut log = Log::new();
        let gpa = 0u64;
        let pa = page_addr(0x1800);
        s2.set_s2pt(
            &mut mem,
            &mut pool,
            &mut log,
            0,
            behaviour(),
            gpa,
            pa,
            Perms::RWX,
        )
        .unwrap();
        assert_eq!(s2.translate(&mem, gpa + 5), Some(pa + 5));
        s2.clear_s2pt(&mut mem, &pool, &mut log, 0, behaviour(), gpa)
            .unwrap();
        assert_eq!(s2.translate(&mem, gpa), None);
        // Barrier + TLBI were emitted after the unmap write.
        let barrier_pos = log
            .iter()
            .position(|e| matches!(e, MEvent::Barrier { .. }))
            .expect("barrier");
        let tlbi_pos = log
            .iter()
            .position(|e| matches!(e, MEvent::Tlbi { .. }))
            .expect("tlbi");
        assert!(barrier_pos < tlbi_pos);
    }

    #[test]
    fn set_clear_roundtrip_4level() {
        let (mut mem, mut pool, s2) = setup(4);
        let mut log = Log::new();
        let gpa = 3 * PAGE_WORDS;
        let pa = page_addr(0x1801);
        s2.set_s2pt(
            &mut mem,
            &mut pool,
            &mut log,
            0,
            behaviour(),
            gpa,
            pa,
            Perms::RW,
        )
        .unwrap();
        assert_eq!(s2.translate(&mem, gpa), Some(pa));
        // 4-level set in a fresh tree writes 4 cells, all previously 0,
        // and is transactional.
        let writes: Vec<_> = log
            .iter()
            .filter(|e| matches!(e, MEvent::PtWrite { .. }))
            .collect();
        assert_eq!(writes.len(), 4);
    }

    #[test]
    fn overwrite_rejected() {
        let (mut mem, mut pool, s2) = setup(3);
        let mut log = Log::new();
        s2.set_s2pt(
            &mut mem,
            &mut pool,
            &mut log,
            0,
            behaviour(),
            0,
            page_addr(0x1800),
            Perms::RW,
        )
        .unwrap();
        assert_eq!(
            s2.set_s2pt(
                &mut mem,
                &mut pool,
                &mut log,
                0,
                behaviour(),
                0,
                page_addr(0x1900),
                Perms::RW,
            ),
            Err(S2Error::Map(MapError::AlreadyMapped))
        );
    }

    #[test]
    fn mutant_skips_tlbi() {
        let (mut mem, mut pool, s2) = setup(3);
        let mut log = Log::new();
        s2.set_s2pt(
            &mut mem,
            &mut pool,
            &mut log,
            0,
            behaviour(),
            0,
            page_addr(0x1800),
            Perms::RW,
        )
        .unwrap();
        let b = S2Behaviour {
            skip_tlbi: true,
            check_transactional: true,
            ..Default::default()
        };
        s2.clear_s2pt(&mut mem, &pool, &mut log, 0, b, 0).unwrap();
        assert!(!log.iter().any(|e| matches!(e, MEvent::Tlbi { .. })));
    }
}
