//! A virtual interrupt controller (vGIC) per VM.
//!
//! Table 2's "I/O Kernel" microbenchmark traps to the emulated interrupt
//! controller in the hypervisor, and "Virtual IPI" sends an SGI from one
//! vCPU to another. This module provides the functional counterpart: a
//! per-VM pending matrix updated by SGI sends (MMIO traps on the
//! distributor) and drained by acknowledgements. The performance side of
//! the same operations lives in `vrm-hwsim`.

/// Interrupt ids: SGIs are 0..16 like the GIC architecture.
pub const MAX_IRQS: usize = 32;

/// Errors from vGIC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VgicError {
    /// Interrupt id out of range.
    BadIrq,
    /// Unknown target vCPU.
    BadVcpu,
    /// Acknowledged an interrupt that was not pending.
    NotPending,
}

impl std::fmt::Display for VgicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VgicError::BadIrq => write!(f, "interrupt id out of range"),
            VgicError::BadVcpu => write!(f, "unknown target vCPU"),
            VgicError::NotPending => write!(f, "interrupt was not pending"),
        }
    }
}

impl std::error::Error for VgicError {}

/// Per-VM virtual interrupt controller state.
#[derive(Debug, Clone, Default)]
pub struct VGic {
    /// `pending[vcpu][irq]`.
    pending: Vec<[bool; MAX_IRQS]>,
}

impl VGic {
    /// Creates the controller with no vCPUs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one more vCPU interface.
    pub fn add_vcpu(&mut self) {
        self.pending.push([false; MAX_IRQS]);
    }

    /// Raises `irq` on `to` (an SGI send or a device interrupt).
    ///
    /// Idempotent while pending, like a level in the GIC's pending state.
    pub fn raise(&mut self, to: u32, irq: u8) -> Result<(), VgicError> {
        if irq as usize >= MAX_IRQS {
            return Err(VgicError::BadIrq);
        }
        let row = self
            .pending
            .get_mut(to as usize)
            .ok_or(VgicError::BadVcpu)?;
        row[irq as usize] = true;
        Ok(())
    }

    /// Acknowledges (clears) a pending interrupt.
    pub fn ack(&mut self, vcpu: u32, irq: u8) -> Result<(), VgicError> {
        if irq as usize >= MAX_IRQS {
            return Err(VgicError::BadIrq);
        }
        let row = self
            .pending
            .get_mut(vcpu as usize)
            .ok_or(VgicError::BadVcpu)?;
        if !row[irq as usize] {
            return Err(VgicError::NotPending);
        }
        row[irq as usize] = false;
        Ok(())
    }

    /// The pending interrupt ids for a vCPU, ascending.
    pub fn pending(&self, vcpu: u32) -> Result<Vec<u8>, VgicError> {
        let row = self.pending.get(vcpu as usize).ok_or(VgicError::BadVcpu)?;
        Ok((0..MAX_IRQS as u8).filter(|&i| row[i as usize]).collect())
    }

    /// Does the vCPU have anything pending?
    pub fn has_pending(&self, vcpu: u32) -> bool {
        self.pending
            .get(vcpu as usize)
            .is_some_and(|row| row.iter().any(|&b| b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_pending_ack_lifecycle() {
        let mut g = VGic::new();
        g.add_vcpu();
        g.add_vcpu();
        g.raise(1, 3).unwrap();
        g.raise(1, 7).unwrap();
        assert_eq!(g.pending(1).unwrap(), vec![3, 7]);
        assert!(!g.has_pending(0));
        g.ack(1, 3).unwrap();
        assert_eq!(g.pending(1).unwrap(), vec![7]);
        assert_eq!(g.ack(1, 3), Err(VgicError::NotPending));
    }

    #[test]
    fn raise_is_idempotent_while_pending() {
        let mut g = VGic::new();
        g.add_vcpu();
        g.raise(0, 1).unwrap();
        g.raise(0, 1).unwrap();
        g.ack(0, 1).unwrap();
        assert_eq!(g.ack(0, 1), Err(VgicError::NotPending));
    }

    #[test]
    fn bounds_checked() {
        let mut g = VGic::new();
        g.add_vcpu();
        assert_eq!(g.raise(0, MAX_IRQS as u8), Err(VgicError::BadIrq));
        assert_eq!(g.raise(1, 0), Err(VgicError::BadVcpu));
        assert_eq!(g.pending(2), Err(VgicError::BadVcpu));
    }
}
