//! The ticket lock (Figure 7) at machine scale.
//!
//! The relaxed-memory correctness of this lock — mutual exclusion under
//! Promising Arm given the acquire/release barriers — is established at
//! litmus scale by `vrm_core::paper_examples::example2` and the push/pull
//! checker. Here the lock provides *semantics* (FIFO fairness, spin
//! accounting) for the multiprocessor machine: a CPU draws a ticket with
//! `fetch_and_inc` and enters when `now` reaches it.

/// A FIFO ticket lock with contention statistics.
#[derive(Debug, Clone, Default)]
pub struct TicketLock {
    ticket: u64,
    now: u64,
    /// CPU currently holding the lock, if any.
    holder: Option<usize>,
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Total spin iterations observed across all waiters.
    pub total_spins: u64,
}

/// A drawn ticket, waiting for its turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(pub u64);

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// `fetch_and_inc(ticket)`: draws a ticket (the acquire path's RMW).
    pub fn draw(&mut self) -> Ticket {
        let t = self.ticket;
        self.ticket += 1;
        Ticket(t)
    }

    /// One spin-loop iteration: does `now` match the ticket yet?
    ///
    /// On success the CPU becomes the holder.
    pub fn try_enter(&mut self, cpu: usize, ticket: Ticket) -> bool {
        if self.now == ticket.0 {
            debug_assert!(self.holder.is_none(), "lock already held");
            self.holder = Some(cpu);
            self.acquisitions += 1;
            true
        } else {
            self.total_spins += 1;
            false
        }
    }

    /// `now++` with release semantics.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not the holder — the machine-level analogue of
    /// the push/pull model's panic on pushing an unowned location.
    pub fn release(&mut self, cpu: usize) {
        assert_eq!(self.holder, Some(cpu), "release by non-holder");
        self.holder = None;
        self.now += 1;
    }

    /// The current holder.
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// Is the lock held at all?
    pub fn is_held(&self) -> bool {
        self.holder.is_some()
    }

    /// Tickets drawn but not yet served (queue depth, including holder).
    pub fn queue_depth(&self) -> u64 {
        self.ticket - self.now
    }

    /// How many releases a drawn ticket still has to wait for (0 = next
    /// to enter). Relative positions are schedule-independent where the
    /// absolute counters are not.
    pub fn position(&self, ticket: Ticket) -> u64 {
        ticket.0 - self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut l = TicketLock::new();
        let t0 = l.draw();
        let t1 = l.draw();
        // Second ticket cannot enter first.
        assert!(!l.try_enter(1, t1));
        assert!(l.try_enter(0, t0));
        assert_eq!(l.holder(), Some(0));
        l.release(0);
        assert!(l.try_enter(1, t1));
        l.release(1);
        assert!(!l.is_held());
        assert_eq!(l.acquisitions, 2);
        assert_eq!(l.total_spins, 1);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn release_by_non_holder_panics() {
        let mut l = TicketLock::new();
        let t = l.draw();
        assert!(l.try_enter(0, t));
        l.release(1);
    }

    #[test]
    fn queue_depth_tracks_waiters() {
        let mut l = TicketLock::new();
        let t0 = l.draw();
        let _t1 = l.draw();
        let _t2 = l.draw();
        assert_eq!(l.queue_depth(), 3);
        assert!(l.try_enter(0, t0));
        l.release(0);
        assert_eq!(l.queue_depth(), 2);
    }
}
