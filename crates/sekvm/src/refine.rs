//! Refinement between the concrete KCore and the abstract ownership
//! machine in `vrm-spec` (§5.2's layered proof strategy).
//!
//! Three pieces make the refinement statement executable:
//!
//! * [`abstract_of`] — the projection: which [`vrm_spec::AbsState`] a
//!   concrete [`KCore`] state denotes. Locks, page-table layout, vCPU
//!   contexts, event logs, map counts and memory *contents* are all
//!   refined away; only translation structure and ownership remain.
//! * [`label_of`] — the label function: which abstract steps a concrete
//!   operation *claims* to perform, derived from the operation and the
//!   pre-state (never from the observed effect — a mutant that skips
//!   work must disagree with its label, not relabel itself). The two
//!   data-oracle side conditions of the paper's proof appear here as
//!   evidence read back from the post-state: a donation claims
//!   [`Claim::Zeroed`]/[`Claim::Authenticated`] only if the frame really
//!   is zeroed / really hashes to the registered value, and a reclaim is
//!   `scrubbed` only if the frame contents are gone.
//! * [`check_transition`] — the simulation obligation for one concrete
//!   transition: replaying the label from the projected pre-state must
//!   be legal and land exactly on the projected post-state, and the
//!   post-state must satisfy noninterference. Operations with an empty
//!   label are stutters: their projections must be identical.
//!
//! [`Machine::check_refinement`](crate::machine::Machine::check_refinement)
//! discharges this obligation for *every* transition the exhaustive
//! schedule exploration reaches.

use vrm_spec::{
    noninterference, step, AbsActor, AbsMapping, AbsOwner, AbsPage, AbsPerms, AbsState, AbsStep,
    AbsUniverse, Claim,
};

use crate::kcore::KCore;
use crate::layout::{
    is_kcore_private, page_addr, pfn_of, EL2_POOL_PFN, KCORE_PFN, MAX_PFN, PAGE_WORDS, S2_POOL_PFN,
    SMMU_POOL_PFN,
};
use crate::machine::Op;
use crate::s2page::Owner;

/// The abstract frame universe induced by the physical memory map:
/// KCore's code/data and page-table pools are hypervisor frames forever.
pub fn universe() -> AbsUniverse {
    AbsUniverse {
        frames: MAX_PFN,
        hyp: vec![KCORE_PFN, EL2_POOL_PFN, S2_POOL_PFN, SMMU_POOL_PFN],
    }
}

fn abs_owner(o: Owner) -> AbsOwner {
    match o {
        Owner::KCore => AbsOwner::Hyp,
        Owner::KServ => AbsOwner::Host,
        Owner::Vm(v) => AbsOwner::Vm(v),
    }
}

fn abs_perms(p: vrm_mmu::pte::Perms) -> AbsPerms {
    AbsPerms {
        r: p.r,
        w: p.w,
        x: p.x,
    }
}

fn project_table(
    out: &mut std::collections::BTreeMap<u64, AbsMapping>,
    mappings: &[vrm_mmu::table::Mapping],
) {
    for m in mappings {
        for (va, pa) in m.pages(PAGE_WORDS) {
            out.insert(
                va / PAGE_WORDS,
                AbsMapping {
                    frame: pfn_of(pa),
                    perms: abs_perms(m.perms),
                },
            );
        }
    }
}

/// Projects a concrete KCore state onto the abstract ownership machine.
pub fn abstract_of(k: &KCore) -> AbsState {
    let mut s = AbsState {
        translation_on: k.stage2_enabled,
        dma_protected: k.smmu_enabled,
        ..Default::default()
    };
    for pfn in 0..MAX_PFN {
        if is_kcore_private(pfn) {
            continue;
        }
        if let Ok(p) = k.s2pages.get(pfn) {
            s.set_page(
                pfn,
                AbsPage {
                    owner: abs_owner(p.owner),
                    shared: p.shared,
                },
            );
        }
    }
    project_table(&mut s.host, &k.kserv_s2.mappings(&k.mem));
    for vm in &k.vms {
        let mut map = std::collections::BTreeMap::new();
        project_table(&mut map, &vm.s2.mappings(&k.mem));
        if !map.is_empty() {
            s.vms.insert(vm.vmid, map);
        }
    }
    for dev in &k.devices {
        let mut map = std::collections::BTreeMap::new();
        project_table(&mut map, &dev.mappings(&k.mem));
        if !map.is_empty() {
            let who = match dev.assigned_to {
                Owner::Vm(v) => AbsActor::Vm(v),
                _ => AbsActor::Host,
            };
            s.devs.insert(dev.dev, (who, map));
        }
    }
    s
}

/// Is the frame's post-state content fully scrubbed?
fn frame_zeroed(post: &KCore, pfn: u64) -> bool {
    (0..PAGE_WORDS).all(|w| post.mem.read(page_addr(pfn) + w) == 0)
}

/// The declassification evidence carried by a VM-image mapping: the
/// post-state image content must hash to the value KServ registered
/// *before* verification. An implementation that maps an unverified
/// image produces an `Owned` claim, which makes the donation illegal.
fn image_claim(pre: &KCore, post: &KCore, vmid: u32) -> Claim {
    let Ok(vm) = pre.vm(vmid) else {
        return Claim::Owned;
    };
    let mut words = Vec::new();
    for &pfn in &vm.image_pfns {
        for w in 0..PAGE_WORDS {
            words.push(post.mem.read(page_addr(pfn) + w));
        }
    }
    if KCore::image_hash(&words) == vm.expected_hash {
        Claim::Authenticated
    } else {
        Claim::Owned
    }
}

/// A frame that cannot exist: used when a label cannot be derived (e.g.
/// a successful walk through a VA the pre-state does not translate).
/// The resulting step is guaranteed illegal, surfacing the inconsistency
/// as a refinement violation instead of hiding it.
const BAD_FRAME: u64 = u64::MAX;

fn translated_pfn(pre: &KCore, vmid: u32, gpa: u64) -> u64 {
    pre.vm(vmid)
        .ok()
        .and_then(|vm| vm.s2.translate(&pre.mem, gpa))
        .map(pfn_of)
        .unwrap_or(BAD_FRAME)
}

/// Derives the abstract steps a concrete operation claims to perform.
///
/// `vm` is the VM the executing CPU operates on (its pre-state
/// registration), `ok` whether the operation completed without a
/// hypercall error. Failed operations and pure-management operations
/// (registration, vCPU scheduling, interrupts, I/O) are stutters.
pub fn label_of(pre: &KCore, vm: Option<u32>, op: &Op, ok: bool, post: &KCore) -> Vec<AbsStep> {
    if !ok {
        return Vec::new();
    }
    let vmid = vm.unwrap_or(u32::MAX);
    match op {
        Op::VerifyImage => {
            let Ok(meta) = pre.vm(vmid) else {
                return Vec::new();
            };
            let claim = image_claim(pre, post, vmid);
            meta.image_pfns
                .iter()
                .enumerate()
                .map(|(i, &pfn)| AbsStep::Map {
                    who: AbsActor::Vm(vmid),
                    vpn: i as u64,
                    frame: pfn,
                    perms: AbsPerms::RWX,
                    claim,
                })
                .collect()
        }
        Op::Fault { gpa, donor_pfn } => {
            let claim = if frame_zeroed(post, *donor_pfn) {
                Claim::Zeroed
            } else {
                Claim::Owned
            };
            vec![AbsStep::Map {
                who: AbsActor::Vm(vmid),
                vpn: gpa / PAGE_WORDS,
                frame: *donor_pfn,
                perms: AbsPerms::RWX,
                claim,
            }]
        }
        Op::Grant { gpa } => {
            let frame = translated_pfn(pre, vmid, *gpa);
            vec![
                AbsStep::Grant { vm: vmid, frame },
                AbsStep::Map {
                    who: AbsActor::Host,
                    vpn: frame,
                    frame,
                    perms: AbsPerms::RW,
                    claim: Claim::Owned,
                },
            ]
        }
        Op::Revoke { gpa } => {
            let frame = translated_pfn(pre, vmid, *gpa);
            vec![
                AbsStep::Unmap {
                    who: AbsActor::Host,
                    vpn: frame,
                },
                AbsStep::Revoke { vm: vmid, frame },
            ]
        }
        Op::Reclaim => {
            let mut steps = Vec::new();
            if let Ok(meta) = pre.vm(vmid) {
                for m in meta.s2.mappings(&pre.mem) {
                    for (va, _) in m.pages(PAGE_WORDS) {
                        steps.push(AbsStep::Unmap {
                            who: AbsActor::Vm(vmid),
                            vpn: va / PAGE_WORDS,
                        });
                    }
                }
            }
            for pfn in pre.s2pages.owned_by(Owner::Vm(vmid)) {
                steps.push(AbsStep::Reclaim {
                    vm: vmid,
                    frame: pfn,
                    scrubbed: frame_zeroed(post, pfn),
                });
            }
            steps
        }
        Op::VmWrite { gpa, .. } => vec![AbsStep::Walk {
            who: AbsActor::Vm(vmid),
            vpn: gpa / PAGE_WORDS,
            frame: translated_pfn(pre, vmid, *gpa),
            write: true,
        }],
        Op::VmReadExpect { gpa, .. } => vec![AbsStep::Walk {
            who: AbsActor::Vm(vmid),
            vpn: gpa / PAGE_WORDS,
            frame: translated_pfn(pre, vmid, *gpa),
            write: false,
        }],
        Op::KservRead { pa, .. } | Op::KservWrite { pa, .. } => {
            let write = matches!(op, Op::KservWrite { .. });
            let pfn = pfn_of(*pa);
            let entitled = match pre.s2pages.get(pfn) {
                Ok(p) => p.owner == Owner::KServ || p.shared,
                Err(_) => false,
            };
            let pre_mapped = pre.kserv_s2.translate(&pre.mem, *pa).is_some();
            let mut steps = Vec::new();
            if !entitled && !pre_mapped {
                // The access is denied: an abstract stutter.
                return steps;
            }
            if !pre_mapped {
                // The demand fault-in KServ's stage-2 performs.
                steps.push(AbsStep::Map {
                    who: AbsActor::Host,
                    vpn: pfn,
                    frame: pfn,
                    perms: AbsPerms::RWX,
                    claim: Claim::Owned,
                });
            }
            steps.push(AbsStep::Walk {
                who: AbsActor::Host,
                vpn: pfn,
                frame: pfn,
                write,
            });
            steps
        }
        // Registration, staging, vCPU scheduling, interrupts and I/O do
        // not change translation or ownership: abstract stutters.
        Op::RegisterVm
        | Op::RegisterVcpu
        | Op::StageImage { .. }
        | Op::RunQuantum { .. }
        | Op::AttachVm { .. }
        | Op::VcpuBegin { .. }
        | Op::VcpuEnd
        | Op::Rendezvous { .. }
        | Op::UartWrite { .. }
        | Op::SendIpi { .. }
        | Op::WaitIrq { .. } => Vec::new(),
    }
}

/// Renders the first few differences between two abstract states.
fn diff(expected: &AbsState, got: &AbsState) -> String {
    let mut out = Vec::new();
    let frames: std::collections::BTreeSet<u64> = expected
        .pages
        .keys()
        .chain(got.pages.keys())
        .copied()
        .collect();
    for f in frames {
        let (e, g) = (expected.pages.get(&f), got.pages.get(&f));
        if e != g {
            out.push(format!("frame {f:#x}: spec {e:?} vs impl {g:?}"));
        }
    }
    if expected.host != got.host {
        out.push(format!(
            "host map: spec {} entries vs impl {} entries",
            expected.host.len(),
            got.host.len()
        ));
    }
    if expected.vms != got.vms {
        out.push("per-VM maps differ".to_string());
    }
    if expected.devs != got.devs {
        out.push("device maps differ".to_string());
    }
    if out.is_empty() {
        out.push("flag bits differ".to_string());
    }
    out.truncate(4);
    out.join("; ")
}

/// Checks the forward-simulation obligation for one concrete transition
/// `pre --op--> post`, returning rendered violations (empty = refines).
pub fn check_transition(
    pre: &KCore,
    vm: Option<u32>,
    op: &Op,
    ok: bool,
    post: &KCore,
) -> Vec<String> {
    let uni = universe();
    let abs_pre = abstract_of(pre);
    let abs_post = abstract_of(post);
    let mut out = Vec::new();
    let mut cur = abs_pre;
    for st in label_of(pre, vm, op, ok, post) {
        match step(&uni, &cur, &st) {
            Ok(next) => cur = next,
            Err(e) => {
                out.push(format!("illegal abstract step {st:?}: {e}"));
                break;
            }
        }
    }
    if out.is_empty() && cur != abs_post {
        out.push(format!(
            "abstract post-state mismatch: {}",
            diff(&cur, &abs_post)
        ));
    }
    for v in noninterference(&uni, &abs_post) {
        out.push(format!("noninterference violated: {v:?}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::KCoreConfig;
    use crate::layout::VM_POOL_PFN;

    fn booted(k: &mut KCore, cpu: usize, base: u64) -> u32 {
        let pfns = vec![base, base + 1];
        let mut words = Vec::new();
        for &pfn in &pfns {
            for w in 0..PAGE_WORDS {
                let v = pfn * 7 + w;
                k.mem.write(page_addr(pfn) + w, v);
                words.push(v);
            }
        }
        let hash = KCore::image_hash(&words);
        let vmid = k.register_vm(cpu).unwrap();
        k.register_vcpu(cpu, vmid).unwrap();
        k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
        k.remap_vm_image(cpu, vmid).unwrap();
        k.verify_vm_image(cpu, vmid).unwrap();
        vmid
    }

    #[test]
    fn boot_projects_to_the_abstract_boot_state() {
        let k = KCore::boot(KCoreConfig::default());
        assert_eq!(abstract_of(&k), AbsState::boot());
    }

    #[test]
    fn projection_tracks_ownership_and_maps() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted(&mut k, 0, VM_POOL_PFN.0);
        let s = abstract_of(&k);
        assert_eq!(s.page(&universe(), VM_POOL_PFN.0).owner, AbsOwner::Vm(vmid));
        let map = s.map_of(AbsActor::Vm(vmid));
        assert_eq!(map.get(&0).map(|m| m.frame), Some(VM_POOL_PFN.0));
        assert_eq!(map.get(&1).map(|m| m.frame), Some(VM_POOL_PFN.0 + 1));
        assert!(noninterference(&universe(), &s).is_empty());
    }

    #[test]
    fn registration_is_a_stutter_and_boot_roundtrips_reclaim() {
        let mut k = KCore::boot(KCoreConfig::default());
        let before = abstract_of(&k);
        let vmid = k.register_vm(0).unwrap();
        k.register_vcpu(0, vmid).unwrap();
        // Registration created concrete state (VM metadata, an empty
        // stage-2 root) but no abstract state.
        assert_eq!(abstract_of(&k), before);
        // A full boot + reclaim returns to the abstract boot state even
        // though the concrete state (destroyed VM metadata, consumed
        // pool pages, logs) is permanently different.
        let vmid = booted(&mut k, 0, VM_POOL_PFN.0);
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(abstract_of(&k), before);
    }

    #[test]
    fn verify_image_transition_refines() {
        let mut k = KCore::boot(KCoreConfig::default());
        let pfns = vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1];
        let mut words = Vec::new();
        for &pfn in &pfns {
            for w in 0..PAGE_WORDS {
                let v = pfn * 7 + w;
                k.mem.write(page_addr(pfn) + w, v);
                words.push(v);
            }
        }
        let hash = KCore::image_hash(&words);
        let vmid = k.register_vm(0).unwrap();
        k.register_vcpu(0, vmid).unwrap();
        k.set_boot_info(0, vmid, pfns, hash).unwrap();
        k.remap_vm_image(0, vmid).unwrap();
        let pre = k.clone();
        k.verify_vm_image(0, vmid).unwrap();
        let v = check_transition(&pre, Some(vmid), &Op::VerifyImage, true, &k);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn a_skipped_scrub_is_not_a_legal_reclaim() {
        let mut k = KCore::boot(KCoreConfig {
            skip_scrub_on_reclaim: true,
            ..Default::default()
        });
        let vmid = booted(&mut k, 0, VM_POOL_PFN.0);
        let pre = k.clone();
        k.reclaim_vm_pages(0, vmid).unwrap();
        let v = check_transition(&pre, Some(vmid), &Op::Reclaim, true, &k);
        assert!(
            v.iter().any(|s| s.contains("unscrubbed")),
            "expected an unscrubbed-reclaim violation, got {v:?}"
        );
    }
}
