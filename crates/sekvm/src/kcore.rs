//! KCore: the trusted hypervisor core and its hypercall interface.
//!
//! KCore owns physical memory management: the `s2page` ownership array,
//! its own EL2 page table, one stage-2 table per principal (KServ and each
//! VM), and the per-device SMMU tables. The hypercalls modelled here are
//! the ones §5 of the paper reasons about:
//!
//! * VM lifecycle — `register_vm` (the `gen_vmid` of Figure 1, under the
//!   VmId ticket lock), `register_vcpu`, `set_boot_info`,
//!   `remap_vm_image` (the `remap_pfn` path extending KCore's EL2 table,
//!   write-once), `verify_vm_image` (hashing the image through the EL2
//!   alias with oracle-masked reads, then donating the pages to the VM),
//!   and `reclaim_vm_pages` (teardown with scrubbing);
//! * vCPU context switching — `run_vcpu` / `stop_vcpu` (Figure 2's
//!   `restore_vm` / `save_vm`);
//! * stage-2 fault handling — `handle_s2_fault` (KServ donates a page,
//!   ownership transferred and scrubbed, `set_s2pt`) and `kserv_fault`
//!   (KServ's identity-mapped stage-2, populated only for pages KServ
//!   owns or was granted);
//! * memory sharing — `grant_page` / `revoke_page` (paravirtual I/O);
//! * DMA protection — `assign_smmu_dev`, `smmu_map`, `smmu_unmap`.
//!
//! Every method asserts the lock discipline (its *primary* lock must be
//! held; see [`machine`](crate::machine) for contended acquisition) and
//! logs page-table writes, barriers, TLBIs, data accesses, and ownership
//! changes for the [`wdrf`](crate::wdrf) validators.

use vrm_memmodel::ir::{Addr, Val};
use vrm_mmu::mem::PhysMem;
use vrm_mmu::pool::PagePool;
use vrm_mmu::pte::Perms;
use vrm_mmu::table::{Geometry, MapError};

use crate::el2pt::El2Pt;
use crate::events::{LockId, Log, MEvent, Principal, TableKind};
use crate::layout::{
    page_addr, pfn_of, EL2_POOL_PFN, EL2_REMAP_BASE, MAX_DEVICES, MAX_VCPUS, MAX_VMS, PAGE_WORDS,
    S2_POOL_PFN, SMMU_POOL_PFN,
};
use crate::npt::{S2Behaviour, S2Error, Stage2};
use crate::s2page::{Owner, OwnershipError, S2PageArray};
use crate::smmu::SmmuDevice;
use crate::ticketlock::TicketLock;
use crate::vcpu::{Vcpu, VcpuCtx, VcpuError};
use crate::vgic::{VGic, VgicError};

/// Configuration (including the mutant switches used to demonstrate the
/// validators catch condition violations).
#[derive(Debug, Clone, Copy)]
pub struct KCoreConfig {
    /// Stage-2 table levels: 3 or 4 (§5.6 verifies both).
    pub s2_levels: u32,
    /// Validate Transactional-Page-Table on every stage-2/SMMU update.
    pub check_transactional: bool,
    /// Mutant: omit the TLBI after unmaps (breaks condition 5).
    pub skip_tlbi_on_unmap: bool,
    /// Mutant: omit the barrier before the TLBI (breaks condition 5).
    pub skip_barrier_before_tlbi: bool,
    /// Mutant: skip ownership checks before mapping (breaks security).
    pub skip_ownership_check: bool,
    /// Mutant: skip scrubbing when reclaiming VM pages (breaks
    /// confidentiality).
    pub skip_scrub_on_reclaim: bool,
    /// Mutant: execute locked hypercalls without acquiring their primary
    /// ticket lock (breaks conditions 1/2 — page-table writes race).
    pub skip_lock_acquire: bool,
    /// Mutant: emit the post-unmap barrier *after* the TLBI instead of
    /// before it, reordering the barrier-protected page-table write
    /// sequence (breaks condition 5).
    pub barrier_after_tlbi: bool,
    /// Mutant: reclaim tears down the VM's stage-2 but never returns
    /// the pages to KServ — ownership leaks (breaks refinement: the
    /// abstract `reclaim` step moves the frame back to the host).
    pub reclaim_leaks_ownership: bool,
    /// Mutant: revoke unmaps KServ's window but leaves the page marked
    /// shared (breaks refinement: the abstract `revoke` step closes the
    /// sharing window).
    pub revoke_keeps_share: bool,
    /// Mutant: revoke clears the shared bit without unmapping KServ's
    /// stage-2 — a stale walk can still reach the page (breaks
    /// refinement *and* abstract noninterference).
    pub revoke_skips_unmap: bool,
}

impl Default for KCoreConfig {
    fn default() -> Self {
        KCoreConfig {
            s2_levels: 3,
            check_transactional: true,
            skip_tlbi_on_unmap: false,
            skip_barrier_before_tlbi: false,
            skip_ownership_check: false,
            skip_scrub_on_reclaim: false,
            skip_lock_acquire: false,
            barrier_after_tlbi: false,
            reclaim_leaks_ownership: false,
            revoke_keeps_share: false,
            revoke_skips_unmap: false,
        }
    }
}

/// Hypercall failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypercallError {
    /// All VM identifiers are in use (`panic()` branch of Figure 1).
    NoVmidsLeft,
    /// Unknown VM id.
    BadVm,
    /// Unknown vCPU id or too many vCPUs.
    BadVcpu,
    /// Operation not valid in the VM's current lifecycle state.
    BadState,
    /// Unknown SMMU device.
    BadDevice,
    /// An ownership check failed.
    Ownership(OwnershipError),
    /// A stage-2/SMMU table update failed.
    S2(S2Error),
    /// An EL2 table update failed.
    El2(MapError),
    /// A vCPU protocol violation.
    Vcpu(VcpuError),
    /// A virtual interrupt-controller error.
    Vgic(VgicError),
    /// VM image authentication failed.
    HashMismatch {
        /// Hash registered by set_boot_info.
        expected: u64,
        /// Hash computed over the remapped image.
        computed: u64,
    },
    /// The principal may not access that memory.
    AccessDenied,
    /// The mapping exists but its permissions forbid the access.
    Permission,
    /// Address not mapped.
    Unmapped,
}

impl std::fmt::Display for HypercallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypercallError::NoVmidsLeft => write!(f, "all VM identifiers in use"),
            HypercallError::BadVm => write!(f, "unknown VM"),
            HypercallError::BadVcpu => write!(f, "unknown vCPU or vCPU limit reached"),
            HypercallError::BadState => write!(f, "operation invalid in this VM state"),
            HypercallError::BadDevice => write!(f, "unknown SMMU device"),
            HypercallError::Ownership(e) => write!(f, "ownership check failed: {e}"),
            HypercallError::S2(e) => write!(f, "stage-2 update failed: {e}"),
            HypercallError::El2(e) => write!(f, "EL2 table update failed: {e}"),
            HypercallError::Vcpu(e) => write!(f, "vCPU protocol violation: {e}"),
            HypercallError::Vgic(e) => write!(f, "virtual interrupt error: {e}"),
            HypercallError::HashMismatch { expected, computed } => write!(
                f,
                "image authentication failed: expected {expected:#x}, got {computed:#x}"
            ),
            HypercallError::AccessDenied => write!(f, "access denied"),
            HypercallError::Permission => write!(f, "mapping permissions forbid the access"),
            HypercallError::Unmapped => write!(f, "address not mapped"),
        }
    }
}

impl std::error::Error for HypercallError {}

impl From<OwnershipError> for HypercallError {
    fn from(e: OwnershipError) -> Self {
        HypercallError::Ownership(e)
    }
}

impl From<S2Error> for HypercallError {
    fn from(e: S2Error) -> Self {
        HypercallError::S2(e)
    }
}

impl From<VcpuError> for HypercallError {
    fn from(e: VcpuError) -> Self {
        HypercallError::Vcpu(e)
    }
}

impl From<VgicError> for HypercallError {
    fn from(e: VgicError) -> Self {
        HypercallError::Vgic(e)
    }
}

/// VM lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// vmid allocated, nothing configured.
    Registered,
    /// Boot image pages and expected hash registered.
    BootInfoSet,
    /// Image authenticated; pages donated; runnable.
    Verified,
    /// Torn down; pages reclaimed.
    Destroyed,
}

/// Per-VM metadata.
#[derive(Debug, Clone)]
pub struct VmMeta {
    /// The VM identifier.
    pub vmid: u32,
    /// Lifecycle state.
    pub state: VmState,
    /// The VM's stage-2 table.
    pub s2: Stage2,
    /// vCPUs.
    pub vcpus: Vec<Vcpu>,
    /// Image page frames staged by KServ.
    pub image_pfns: Vec<u64>,
    /// Expected image hash.
    pub expected_hash: u64,
    /// EL2 alias of the image (set by `remap_vm_image`).
    pub remap_va: Option<Addr>,
    /// The VM's virtual interrupt controller.
    pub vgic: VGic,
    /// Console output emulated by QEMU in KServ's user space (Table 2's
    /// "I/O User" path).
    pub uart: Vec<u8>,
    /// Per-VM migration/snapshot encryption key (modelled keystream seed).
    pub migration_key: u64,
    /// Integrity tags of exported pages, by guest physical page base.
    pub exported: std::collections::BTreeMap<Addr, u64>,
}

/// KCore's locks.
#[derive(Debug, Clone)]
pub struct Locks {
    vmid: TicketLock,
    vm: Vec<TicketLock>,
    kserv_s2: TicketLock,
    smmu: Vec<TicketLock>,
    s2page: TicketLock,
    el2: TicketLock,
}

impl Locks {
    fn new() -> Self {
        Locks {
            vmid: TicketLock::new(),
            vm: (0..MAX_VMS).map(|_| TicketLock::new()).collect(),
            kserv_s2: TicketLock::new(),
            smmu: (0..MAX_DEVICES).map(|_| TicketLock::new()).collect(),
            s2page: TicketLock::new(),
            el2: TicketLock::new(),
        }
    }

    /// Mutable access to a lock by id.
    pub fn get_mut(&mut self, id: LockId) -> &mut TicketLock {
        match id {
            LockId::VmId => &mut self.vmid,
            LockId::Vm(v) => &mut self.vm[v as usize],
            LockId::KServS2 => &mut self.kserv_s2,
            LockId::Smmu(d) => &mut self.smmu[d as usize],
            LockId::S2Page => &mut self.s2page,
            LockId::El2 => &mut self.el2,
        }
    }

    /// Read-only holder query.
    pub fn holder(&self, id: LockId) -> Option<usize> {
        match id {
            LockId::VmId => self.vmid.holder(),
            LockId::Vm(v) => self.vm[v as usize].holder(),
            LockId::KServS2 => self.kserv_s2.holder(),
            LockId::Smmu(d) => self.smmu[d as usize].holder(),
            LockId::S2Page => self.s2page.holder(),
            LockId::El2 => self.el2.holder(),
        }
    }

    /// Read-only access to a lock by id.
    pub fn get(&self, id: LockId) -> &TicketLock {
        match id {
            LockId::VmId => &self.vmid,
            LockId::Vm(v) => &self.vm[v as usize],
            LockId::KServS2 => &self.kserv_s2,
            LockId::Smmu(d) => &self.smmu[d as usize],
            LockId::S2Page => &self.s2page,
            LockId::El2 => &self.el2,
        }
    }

    /// Writes a canonical encoding of every lock's *semantic* state —
    /// queue depth and holder, not the absolute ticket counters or the
    /// spin statistics, which are schedule history rather than state.
    pub fn encode(&self, w: &mut impl std::fmt::Write) {
        let all = [&self.vmid, &self.kserv_s2, &self.s2page, &self.el2]
            .into_iter()
            .chain(self.vm.iter())
            .chain(self.smmu.iter());
        for l in all {
            let _ = write!(w, "{}:{:?},", l.queue_depth(), l.holder());
        }
    }
}

/// The trusted core.
#[derive(Debug, Clone)]
pub struct KCore {
    /// Simulated physical memory.
    pub mem: PhysMem,
    /// Page ownership.
    pub s2pages: S2PageArray,
    /// KCore's EL2 table.
    pub el2: El2Pt,
    /// Stage-2 trees: KServ's identity map.
    pub kserv_s2: Stage2,
    /// Registered VMs (index = vmid).
    pub vms: Vec<VmMeta>,
    /// SMMU devices.
    pub devices: Vec<SmmuDevice>,
    /// Locks.
    pub locks: Locks,
    /// Event log.
    pub log: Log,
    /// Configuration.
    pub cfg: KCoreConfig,
    /// Invariant flags (§5.3): stage-2 translation is enabled for
    /// KServ/VMs and the SMMU is enabled; must never be cleared.
    pub stage2_enabled: bool,
    /// SMMU enable flag.
    pub smmu_enabled: bool,
    el2_pool: PagePool,
    s2_pool: PagePool,
    smmu_pool: PagePool,
    next_vmid: u32,
    remap_next: Addr,
}

impl KCore {
    /// Boots KCore: scrubs the pools, builds the EL2 linear map, creates
    /// KServ's stage-2 tree and the SMMU device tables.
    ///
    /// # Examples
    ///
    /// ```
    /// use vrm_sekvm::{KCore, KCoreConfig};
    ///
    /// let mut kcore = KCore::boot(KCoreConfig::default());
    /// let vmid = kcore.register_vm(0).unwrap();
    /// assert_eq!(kcore.register_vm(1).unwrap(), vmid + 1); // unique ids
    /// ```
    pub fn boot(cfg: KCoreConfig) -> Self {
        assert!(cfg.s2_levels == 3 || cfg.s2_levels == 4);
        let mut mem = PhysMem::new();
        let mut el2_pool = PagePool::new(
            &mut mem,
            page_addr(EL2_POOL_PFN.0),
            PAGE_WORDS,
            EL2_POOL_PFN.1 - EL2_POOL_PFN.0,
        );
        let mut s2_pool = PagePool::new(
            &mut mem,
            page_addr(S2_POOL_PFN.0),
            PAGE_WORDS,
            S2_POOL_PFN.1 - S2_POOL_PFN.0,
        );
        let mut smmu_pool = PagePool::new(
            &mut mem,
            page_addr(SMMU_POOL_PFN.0),
            PAGE_WORDS,
            SMMU_POOL_PFN.1 - SMMU_POOL_PFN.0,
        );
        let el2 = El2Pt::boot(&mut mem, &mut el2_pool);
        let kserv_s2 = Stage2::new(
            &mut mem,
            &mut s2_pool,
            TableKind::Stage2(None),
            Self::geometry(cfg.s2_levels),
        )
        .expect("KServ stage-2 root");
        let devices = (0..MAX_DEVICES)
            .map(|d| SmmuDevice::new(&mut mem, &mut smmu_pool, d).expect("SMMU table"))
            .collect();
        KCore {
            mem,
            s2pages: S2PageArray::new(),
            el2,
            kserv_s2,
            vms: Vec::new(),
            devices,
            locks: Locks::new(),
            log: Log::new(),
            cfg,
            stage2_enabled: true,
            smmu_enabled: true,
            el2_pool,
            s2_pool,
            smmu_pool,
            next_vmid: 0,
            remap_next: EL2_REMAP_BASE,
        }
    }

    fn geometry(levels: u32) -> Geometry {
        if levels == 3 {
            Geometry::arm_3level()
        } else {
            Geometry::arm_4level()
        }
    }

    /// Writes a canonical encoding of everything that can affect future
    /// behaviour — memory, ownership, tables, VM/vCPU/device state, lock
    /// queues, allocator pools — but *not* the event log (which records
    /// the path taken, not the state reached) or lock statistics. The
    /// machine's exhaustive-schedule exploration deduplicates on this.
    pub fn encode_state(&self, w: &mut impl std::fmt::Write) {
        let _ = write!(
            w,
            "{:?};{:?};{:?};{:?};{:?};{:?};",
            self.mem, self.s2pages, self.el2, self.kserv_s2, self.vms, self.devices
        );
        self.locks.encode(w);
        let _ = write!(
            w,
            ";{:?};{}{};{};{};{:?};{:?};{:?}",
            self.cfg,
            self.stage2_enabled,
            self.smmu_enabled,
            self.next_vmid,
            self.remap_next,
            self.el2_pool,
            self.s2_pool,
            self.smmu_pool
        );
    }

    fn behaviour(&self) -> S2Behaviour {
        S2Behaviour {
            skip_tlbi: self.cfg.skip_tlbi_on_unmap,
            skip_barrier: self.cfg.skip_barrier_before_tlbi,
            barrier_after_tlbi: self.cfg.barrier_after_tlbi,
            check_transactional: self.cfg.check_transactional,
        }
    }

    // --- locking -----------------------------------------------------

    /// Acquires a lock immediately (uncontended contexts: direct calls
    /// and nested locks inside serialized bodies).
    pub fn lock(&mut self, cpu: usize, id: LockId) {
        let l = self.locks.get_mut(id);
        let t = l.draw();
        let entered = l.try_enter(cpu, t);
        assert!(entered, "lock {id:?} unexpectedly contended");
        self.log.push(MEvent::LockAcquire {
            cpu,
            lock: id,
            ticket: t.0,
            spins: 0,
        });
    }

    /// Releases a lock.
    pub fn unlock(&mut self, cpu: usize, id: LockId) {
        self.locks.get_mut(id).release(cpu);
        self.log.push(MEvent::LockRelease { cpu, lock: id });
    }

    /// Asserts the lock discipline: `cpu` holds `id`.
    pub fn assert_holds(&self, cpu: usize, id: LockId) {
        // The skip-lock-acquire mutant models a developer deleting the
        // locking wholesale — including this internal assertion — so the
        // *external* validator (`wdrf::validate_log`) must catch it.
        if self.cfg.skip_lock_acquire {
            return;
        }
        assert_eq!(
            self.locks.holder(id),
            Some(cpu),
            "lock discipline violated: CPU {cpu} must hold {id:?}"
        );
    }

    // --- VM lifecycle --------------------------------------------------

    /// `gen_vmid` / register a new VM. Primary lock: [`LockId::VmId`].
    pub fn register_vm(&mut self, cpu: usize) -> Result<u32, HypercallError> {
        self.lock(cpu, LockId::VmId);
        let r = self.register_vm_locked(cpu);
        self.unlock(cpu, LockId::VmId);
        r
    }

    /// Body of [`KCore::register_vm`] (VmId lock must be held).
    pub fn register_vm_locked(&mut self, cpu: usize) -> Result<u32, HypercallError> {
        self.assert_holds(cpu, LockId::VmId);
        if self.next_vmid >= MAX_VMS {
            return Err(HypercallError::NoVmidsLeft);
        }
        let vmid = self.next_vmid;
        self.next_vmid += 1;
        let s2 = Stage2::new(
            &mut self.mem,
            &mut self.s2_pool,
            TableKind::Stage2(Some(vmid)),
            Self::geometry(self.cfg.s2_levels),
        )
        .expect("stage-2 pool exhausted");
        self.vms.push(VmMeta {
            vmid,
            state: VmState::Registered,
            s2,
            vcpus: Vec::new(),
            image_pfns: Vec::new(),
            expected_hash: 0,
            remap_va: None,
            vgic: VGic::new(),
            uart: Vec::new(),
            migration_key: 0x9e3779b97f4a7c15u64
                .wrapping_mul(vmid as u64 + 1)
                .rotate_left(17),
            exported: std::collections::BTreeMap::new(),
        });
        Ok(vmid)
    }

    /// Registers a vCPU. Primary lock: [`LockId::Vm`].
    pub fn register_vcpu(&mut self, cpu: usize, vmid: u32) -> Result<u32, HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.register_vcpu_locked(cpu, vmid);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::register_vcpu`].
    pub fn register_vcpu_locked(&mut self, cpu: usize, vmid: u32) -> Result<u32, HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let vm = self.vm_mut(vmid)?;
        if vm.vcpus.len() as u32 >= MAX_VCPUS {
            return Err(HypercallError::BadVcpu);
        }
        vm.vcpus.push(Vcpu::default());
        vm.vgic.add_vcpu();
        Ok(vm.vcpus.len() as u32 - 1)
    }

    /// Registers the boot image (pfns staged by KServ) and its hash.
    /// Primary lock: [`LockId::Vm`].
    pub fn set_boot_info(
        &mut self,
        cpu: usize,
        vmid: u32,
        image_pfns: Vec<u64>,
        expected_hash: u64,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.set_boot_info_locked(cpu, vmid, image_pfns, expected_hash);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::set_boot_info`].
    pub fn set_boot_info_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        image_pfns: Vec<u64>,
        expected_hash: u64,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        for &pfn in &image_pfns {
            if self.s2pages.owner(pfn)? != Owner::KServ {
                return Err(HypercallError::AccessDenied);
            }
        }
        let vm = self.vm_mut(vmid)?;
        if vm.state != VmState::Registered {
            return Err(HypercallError::BadState);
        }
        vm.image_pfns = image_pfns;
        vm.expected_hash = expected_hash;
        vm.state = VmState::BootInfoSet;
        Ok(())
    }

    /// `remap_pfn`: aliases the (possibly discontiguous) image pages into
    /// a contiguous EL2 region for hashing. Primary lock: [`LockId::Vm`].
    pub fn remap_vm_image(&mut self, cpu: usize, vmid: u32) -> Result<Addr, HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.remap_vm_image_locked(cpu, vmid);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::remap_vm_image`].
    pub fn remap_vm_image_locked(&mut self, cpu: usize, vmid: u32) -> Result<Addr, HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let (state, pfns) = {
            let vm = self.vm(vmid)?;
            (vm.state, vm.image_pfns.clone())
        };
        if state != VmState::BootInfoSet {
            return Err(HypercallError::BadState);
        }
        let base = self.remap_next;
        self.lock(cpu, LockId::El2);
        for (i, &pfn) in pfns.iter().enumerate() {
            let va = base + (i as u64) * PAGE_WORDS;
            let r = self.el2.set_el2_pt(
                &mut self.mem,
                &mut self.el2_pool,
                &mut self.log,
                cpu,
                va,
                page_addr(pfn),
            );
            if let Err(e) = r {
                self.unlock(cpu, LockId::El2);
                return Err(HypercallError::El2(e));
            }
        }
        self.unlock(cpu, LockId::El2);
        self.remap_next = base + (pfns.len() as u64) * PAGE_WORDS;
        self.vm_mut(vmid)?.remap_va = Some(base);
        Ok(base)
    }

    /// Authenticates the image and, on success, donates the pages to the
    /// VM and maps them at guest physical 0. Primary lock: [`LockId::Vm`].
    pub fn verify_vm_image(&mut self, cpu: usize, vmid: u32) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.verify_vm_image_locked(cpu, vmid);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::verify_vm_image`].
    pub fn verify_vm_image_locked(&mut self, cpu: usize, vmid: u32) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let (state, pfns, expected, remap_va) = {
            let vm = self.vm(vmid)?;
            (
                vm.state,
                vm.image_pfns.clone(),
                vm.expected_hash,
                vm.remap_va,
            )
        };
        if state != VmState::BootInfoSet {
            return Err(HypercallError::BadState);
        }
        let Some(base) = remap_va else {
            return Err(HypercallError::BadState);
        };
        // Hash through the contiguous EL2 alias. These reads target
        // KServ-owned memory and are oracle-masked in the proofs (§5.3).
        let mut computed = 0xcbf29ce484222325u64; // FNV offset basis
        for i in 0..(pfns.len() as u64) * PAGE_WORDS {
            let va = base + i;
            let pa = self
                .el2
                .translate(&self.mem, va)
                .ok_or(HypercallError::Unmapped)?;
            let word = self.mem.read(pa);
            self.log.push(MEvent::MemRead {
                cpu,
                who: Principal::KCore,
                pa,
                oracle_masked: true,
            });
            computed = (computed ^ word).wrapping_mul(0x100000001b3);
        }
        if computed != expected {
            return Err(HypercallError::HashMismatch { expected, computed });
        }
        // Donate and map the image pages.
        self.lock(cpu, LockId::S2Page);
        for (i, &pfn) in pfns.iter().enumerate() {
            let r = self.s2pages.transfer(pfn, Owner::KServ, Owner::Vm(vmid));
            if let Err(e) = r {
                self.unlock(cpu, LockId::S2Page);
                return Err(e.into());
            }
            self.log.push(MEvent::OwnershipChange {
                cpu,
                pfn,
                from: Owner::KServ,
                to: Owner::Vm(vmid),
            });
            let gpa = (i as u64) * PAGE_WORDS;
            let behaviour = self.behaviour();
            let vm = self.vms.get(vmid as usize).expect("checked");
            let r = vm.s2.set_s2pt(
                &mut self.mem,
                &mut self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                gpa,
                page_addr(pfn),
                Perms::RWX,
            );
            if let Err(e) = r {
                self.unlock(cpu, LockId::S2Page);
                return Err(e.into());
            }
            self.s2pages.inc_map(pfn)?;
        }
        self.unlock(cpu, LockId::S2Page);
        self.vm_mut(vmid)?.state = VmState::Verified;
        Ok(())
    }

    /// Tears a VM down: unmaps and scrubs every page it owns, returning
    /// them to KServ. Primary lock: [`LockId::Vm`].
    pub fn reclaim_vm_pages(&mut self, cpu: usize, vmid: u32) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.reclaim_vm_pages_locked(cpu, vmid);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::reclaim_vm_pages`].
    pub fn reclaim_vm_pages_locked(&mut self, cpu: usize, vmid: u32) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        if self.vm(vmid)?.state == VmState::Destroyed {
            return Err(HypercallError::BadState);
        }
        // Unmap everything from the VM's stage-2.
        let mappings = {
            let vm = self.vm(vmid)?;
            vm.s2.mappings(&self.mem)
        };
        let behaviour = self.behaviour();
        for m in &mappings {
            let vm = self.vms.get(vmid as usize).expect("checked");
            vm.s2.clear_s2pt(
                &mut self.mem,
                &self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                m.va,
            )?;
            self.s2pages.dec_map(pfn_of(m.pa))?;
        }
        // Scrub and return every VM-owned page.
        self.lock(cpu, LockId::S2Page);
        let owned = self.s2pages.owned_by(Owner::Vm(vmid));
        for pfn in owned {
            if !self.cfg.skip_scrub_on_reclaim {
                self.mem.zero_range(page_addr(pfn), PAGE_WORDS);
                self.log.push(MEvent::MemWrite {
                    cpu,
                    who: Principal::KCore,
                    pa: page_addr(pfn),
                });
            }
            if !self.cfg.reclaim_leaks_ownership {
                let r = self.s2pages.transfer(pfn, Owner::Vm(vmid), Owner::KServ);
                if let Err(e) = r {
                    self.unlock(cpu, LockId::S2Page);
                    return Err(e.into());
                }
                self.log.push(MEvent::OwnershipChange {
                    cpu,
                    pfn,
                    from: Owner::Vm(vmid),
                    to: Owner::KServ,
                });
            }
        }
        self.unlock(cpu, LockId::S2Page);
        self.vm_mut(vmid)?.state = VmState::Destroyed;
        Ok(())
    }

    // --- vCPU context switching ---------------------------------------

    /// `restore_vm`: claims a vCPU for this physical CPU. Primary lock:
    /// [`LockId::Vm`] (Figure 2's `acquire_lock_vm`).
    pub fn run_vcpu(
        &mut self,
        cpu: usize,
        vmid: u32,
        vcpuid: u32,
    ) -> Result<VcpuCtx, HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.run_vcpu_locked(cpu, vmid, vcpuid);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::run_vcpu`].
    pub fn run_vcpu_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        vcpuid: u32,
    ) -> Result<VcpuCtx, HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let vm = self.vm_mut(vmid)?;
        if vm.state != VmState::Verified {
            return Err(HypercallError::BadState);
        }
        let vcpu = vm
            .vcpus
            .get_mut(vcpuid as usize)
            .ok_or(HypercallError::BadVcpu)?;
        Ok(vcpu.restore(cpu)?)
    }

    /// `save_vm`: saves the context and releases the vCPU (no lock, per
    /// Figure 2 — the state variable is the synchronization).
    pub fn stop_vcpu(
        &mut self,
        cpu: usize,
        vmid: u32,
        vcpuid: u32,
        ctx: VcpuCtx,
    ) -> Result<(), HypercallError> {
        let vm = self.vm_mut(vmid)?;
        let vcpu = vm
            .vcpus
            .get_mut(vcpuid as usize)
            .ok_or(HypercallError::BadVcpu)?;
        vcpu.save(cpu, ctx)?;
        // The store-release publishing INACTIVE (Example 3's fix).
        self.log.push(MEvent::Barrier { cpu });
        Ok(())
    }

    // --- virtual interrupts ----------------------------------------------

    /// Sends an SGI (virtual IPI) from one vCPU to another: the MMIO trap
    /// to the emulated interrupt controller plus delivery (Table 2's
    /// "Virtual IPI"). Primary lock: [`LockId::Vm`].
    pub fn send_sgi(
        &mut self,
        cpu: usize,
        vmid: u32,
        to_vcpu: u32,
        irq: u8,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.send_sgi_locked(cpu, vmid, to_vcpu, irq);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::send_sgi`].
    pub fn send_sgi_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        to_vcpu: u32,
        irq: u8,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let vm = self.vm_mut(vmid)?;
        vm.vgic.raise(to_vcpu, irq)?;
        Ok(())
    }

    /// Acknowledges a pending virtual interrupt. Primary lock:
    /// [`LockId::Vm`].
    pub fn ack_irq(
        &mut self,
        cpu: usize,
        vmid: u32,
        vcpu: u32,
        irq: u8,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.ack_irq_locked(cpu, vmid, vcpu, irq);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::ack_irq`].
    pub fn ack_irq_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        vcpu: u32,
        irq: u8,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let vm = self.vm_mut(vmid)?;
        vm.vgic.ack(vcpu, irq)?;
        Ok(())
    }

    /// The pending virtual interrupts of a vCPU.
    pub fn pending_irqs(&self, vmid: u32, vcpu: u32) -> Result<Vec<u8>, HypercallError> {
        Ok(self.vm(vmid)?.vgic.pending(vcpu)?)
    }

    /// A VM writes its emulated UART: the trap is forwarded through KServ
    /// to the userspace device model (QEMU) — Table 2's "I/O User"
    /// operation, modelled functionally as appending to the VM's console
    /// buffer. Primary lock: [`LockId::Vm`].
    pub fn uart_write(&mut self, cpu: usize, vmid: u32, byte: u8) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.uart_write_locked(cpu, vmid, byte);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::uart_write`].
    pub fn uart_write_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        byte: u8,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        if self.vm(vmid)?.state != VmState::Verified {
            return Err(HypercallError::BadState);
        }
        // The device model runs in KServ userspace: the byte itself is
        // deliberately exposed to KServ (console output is not a secret),
        // which is why guests treat the console as untrusted output.
        self.vm_mut(vmid)?.uart.push(byte);
        Ok(())
    }

    // --- stage-2 fault handling and sharing -----------------------------

    /// Handles a VM stage-2 fault: KServ donates `donor_pfn`, which is
    /// transferred, scrubbed, and mapped at `gpa`. Primary lock:
    /// [`LockId::Vm`].
    pub fn handle_s2_fault(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        donor_pfn: u64,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.handle_s2_fault_locked(cpu, vmid, gpa, donor_pfn);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::handle_s2_fault`].
    pub fn handle_s2_fault_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        donor_pfn: u64,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        if self.vm(vmid)?.state != VmState::Verified {
            return Err(HypercallError::BadState);
        }
        self.lock(cpu, LockId::S2Page);
        let check = if self.cfg.skip_ownership_check {
            Ok(())
        } else {
            match self.s2pages.get(donor_pfn) {
                Ok(p) if p.owner == Owner::KServ && !p.shared && p.map_count == 0 => Ok(()),
                Ok(_) => Err(HypercallError::AccessDenied),
                Err(e) => Err(e.into()),
            }
        };
        if let Err(e) = check {
            self.unlock(cpu, LockId::S2Page);
            return Err(e);
        }
        if !self.cfg.skip_ownership_check {
            let r = self
                .s2pages
                .transfer(donor_pfn, Owner::KServ, Owner::Vm(vmid));
            if let Err(e) = r {
                self.unlock(cpu, LockId::S2Page);
                return Err(e.into());
            }
            self.log.push(MEvent::OwnershipChange {
                cpu,
                pfn: donor_pfn,
                from: Owner::KServ,
                to: Owner::Vm(vmid),
            });
        }
        // Scrub the donated page: KServ data must not leak into the VM.
        self.mem.zero_range(page_addr(donor_pfn), PAGE_WORDS);
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::KCore,
            pa: page_addr(donor_pfn),
        });
        let behaviour = self.behaviour();
        let vm = self.vms.get(vmid as usize).expect("checked");
        let r = vm.s2.set_s2pt(
            &mut self.mem,
            &mut self.s2_pool,
            &mut self.log,
            cpu,
            behaviour,
            gpa,
            page_addr(donor_pfn),
            Perms::RWX,
        );
        let r = r.map_err(HypercallError::from).and_then(|()| {
            self.s2pages
                .inc_map(donor_pfn)
                .map_err(HypercallError::from)
        });
        self.unlock(cpu, LockId::S2Page);
        r
    }

    /// Grants one VM page to KServ (paravirtual I/O sharing). Primary
    /// lock: [`LockId::Vm`].
    pub fn grant_page(&mut self, cpu: usize, vmid: u32, gpa: Addr) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.grant_page_locked(cpu, vmid, gpa);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::grant_page`].
    pub fn grant_page_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let pa = {
            let vm = self.vm(vmid)?;
            vm.s2
                .translate(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?
        };
        let pfn = pfn_of(pa);
        self.lock(cpu, LockId::S2Page);
        let r = self.s2pages.set_shared(pfn, true);
        self.unlock(cpu, LockId::S2Page);
        r?;
        // Map into KServ's identity stage-2.
        self.lock(cpu, LockId::KServS2);
        let behaviour = self.behaviour();
        let r = self.kserv_s2.set_s2pt(
            &mut self.mem,
            &mut self.s2_pool,
            &mut self.log,
            cpu,
            behaviour,
            page_addr(pfn),
            page_addr(pfn),
            Perms::RW,
        );
        let r = r
            .map_err(HypercallError::from)
            .and_then(|()| self.s2pages.inc_map(pfn).map_err(HypercallError::from));
        self.unlock(cpu, LockId::KServS2);
        r
    }

    /// Revokes a previously granted page: unmap from KServ's stage-2 with
    /// barrier + TLBI, then unshare. Primary lock: [`LockId::Vm`].
    pub fn revoke_page(&mut self, cpu: usize, vmid: u32, gpa: Addr) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.revoke_page_locked(cpu, vmid, gpa);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::revoke_page`].
    pub fn revoke_page_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let pa = {
            let vm = self.vm(vmid)?;
            vm.s2
                .translate(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?
        };
        let pfn = pfn_of(pa);
        if !self.cfg.revoke_skips_unmap {
            self.lock(cpu, LockId::KServS2);
            let behaviour = self.behaviour();
            let r = self.kserv_s2.clear_s2pt(
                &mut self.mem,
                &self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                page_addr(pfn),
            );
            self.unlock(cpu, LockId::KServS2);
            r?;
            self.s2pages.dec_map(pfn)?;
        }
        if !self.cfg.revoke_keeps_share {
            self.lock(cpu, LockId::S2Page);
            let r = self.s2pages.set_shared(pfn, false);
            self.unlock(cpu, LockId::S2Page);
            r?;
        }
        Ok(())
    }

    /// KServ stage-2 fault: populate KServ's identity map for a page it
    /// owns (or was granted). Primary lock: [`LockId::KServS2`].
    pub fn kserv_fault(&mut self, cpu: usize, pfn: u64) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::KServS2);
        let r = self.kserv_fault_locked(cpu, pfn);
        self.unlock(cpu, LockId::KServS2);
        r
    }

    /// Body of [`KCore::kserv_fault`].
    pub fn kserv_fault_locked(&mut self, cpu: usize, pfn: u64) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::KServS2);
        if !self.cfg.skip_ownership_check {
            let page = self.s2pages.get(pfn)?;
            let allowed = page.owner == Owner::KServ || page.shared;
            if !allowed {
                return Err(HypercallError::AccessDenied);
            }
        }
        let behaviour = self.behaviour();
        self.kserv_s2
            .set_s2pt(
                &mut self.mem,
                &mut self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                page_addr(pfn),
                page_addr(pfn),
                Perms::RWX,
            )
            .map_err(HypercallError::from)?;
        self.s2pages.inc_map(pfn)?;
        Ok(())
    }

    // --- SMMU -----------------------------------------------------------

    /// Assigns a device to a VM (table must be empty). Primary lock:
    /// [`LockId::Smmu`].
    pub fn assign_smmu_dev(
        &mut self,
        cpu: usize,
        dev: u32,
        to: Owner,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Smmu(dev));
        let r = self.assign_smmu_dev_locked(cpu, dev, to);
        self.unlock(cpu, LockId::Smmu(dev));
        r
    }

    /// Body of [`KCore::assign_smmu_dev`].
    pub fn assign_smmu_dev_locked(
        &mut self,
        cpu: usize,
        dev: u32,
        to: Owner,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Smmu(dev));
        if to == Owner::KCore {
            return Err(HypercallError::AccessDenied);
        }
        let device = self
            .devices
            .get_mut(dev as usize)
            .ok_or(HypercallError::BadDevice)?;
        if !device.mappings(&self.mem).is_empty() {
            return Err(HypercallError::BadState);
        }
        device.assigned_to = to;
        Ok(())
    }

    /// Maps `iova -> pfn` in a device's SMMU table; the page must be owned
    /// by the device's principal. Primary lock: [`LockId::Smmu`].
    pub fn smmu_map(
        &mut self,
        cpu: usize,
        dev: u32,
        iova: Addr,
        pfn: u64,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Smmu(dev));
        let r = self.smmu_map_locked(cpu, dev, iova, pfn);
        self.unlock(cpu, LockId::Smmu(dev));
        r
    }

    /// Body of [`KCore::smmu_map`].
    pub fn smmu_map_locked(
        &mut self,
        cpu: usize,
        dev: u32,
        iova: Addr,
        pfn: u64,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Smmu(dev));
        let assigned_to = self
            .devices
            .get(dev as usize)
            .ok_or(HypercallError::BadDevice)?
            .assigned_to;
        if !self.cfg.skip_ownership_check {
            let owner = self.s2pages.owner(pfn)?;
            if owner != assigned_to || owner == Owner::KCore {
                return Err(HypercallError::AccessDenied);
            }
        }
        let behaviour = self.behaviour();
        let device = self.devices.get(dev as usize).expect("checked");
        device
            .set_spt(
                &mut self.mem,
                &mut self.smmu_pool,
                &mut self.log,
                cpu,
                behaviour,
                iova,
                page_addr(pfn),
            )
            .map_err(HypercallError::from)?;
        self.s2pages.inc_map(pfn)?;
        Ok(())
    }

    /// Unmaps a device IOVA (barrier + SMMU TLBI). Primary lock:
    /// [`LockId::Smmu`].
    pub fn smmu_unmap(&mut self, cpu: usize, dev: u32, iova: Addr) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Smmu(dev));
        let r = self.smmu_unmap_locked(cpu, dev, iova);
        self.unlock(cpu, LockId::Smmu(dev));
        r
    }

    /// Body of [`KCore::smmu_unmap`].
    pub fn smmu_unmap_locked(
        &mut self,
        cpu: usize,
        dev: u32,
        iova: Addr,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Smmu(dev));
        let pa = {
            let device = self
                .devices
                .get(dev as usize)
                .ok_or(HypercallError::BadDevice)?;
            device
                .translate(&self.mem, iova)
                .ok_or(HypercallError::Unmapped)?
        };
        let behaviour = self.behaviour();
        let device = self.devices.get(dev as usize).expect("checked");
        device
            .clear_spt(
                &mut self.mem,
                &self.smmu_pool,
                &mut self.log,
                cpu,
                behaviour,
                iova,
            )
            .map_err(HypercallError::from)?;
        self.s2pages.dec_map(pfn_of(pa))?;
        Ok(())
    }

    /// Changes the permissions of an existing VM mapping using the
    /// break-before-make sequence Arm requires: unmap (with barrier and
    /// TLBI, condition 5), then re-map with the new permissions — both
    /// inside the VM's critical section. Primary lock: [`LockId::Vm`].
    pub fn protect_vm_page(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        perms: Perms,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.protect_vm_page_locked(cpu, vmid, gpa, perms);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::protect_vm_page`].
    pub fn protect_vm_page_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        perms: Perms,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let pa = {
            let vm = self.vm(vmid)?;
            vm.s2
                .translate(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?
        };
        let page_gpa = gpa & !(PAGE_WORDS - 1);
        let page_pa = pa & !(PAGE_WORDS - 1);
        let behaviour = self.behaviour();
        let vm = self.vms.get(vmid as usize).expect("checked");
        // Break: unmap + barrier + TLBI.
        vm.s2.clear_s2pt(
            &mut self.mem,
            &self.s2_pool,
            &mut self.log,
            cpu,
            behaviour,
            page_gpa,
        )?;
        // Make: fresh mapping with the new permissions.
        let vm = self.vms.get(vmid as usize).expect("checked");
        vm.s2
            .set_s2pt(
                &mut self.mem,
                &mut self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                page_gpa,
                page_pa,
                perms,
            )
            .map_err(HypercallError::from)?;
        Ok(())
    }

    // --- VM migration / snapshot (encrypted page export) -----------------

    /// Modelled keystream word (XOR cipher; stands in for the real AES of
    /// SeKVM's migration support — only the information-flow structure
    /// matters for the modelled properties).
    fn keystream(key: u64, gpa: Addr, i: u64) -> Val {
        let mut x = key ^ gpa.wrapping_mul(0x100000001b3) ^ i.wrapping_add(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    /// Exports the VM page at `gpa`, encrypted, into a KServ-owned page —
    /// the migration/snapshot path. KServ never sees plaintext; KCore's
    /// reads of the VM page are oracle-masked in the proofs (§5.3).
    /// Primary lock: [`LockId::Vm`].
    pub fn export_vm_page(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        dest_pfn: u64,
    ) -> Result<u64, HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.export_vm_page_locked(cpu, vmid, gpa, dest_pfn);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::export_vm_page`].
    pub fn export_vm_page_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        dest_pfn: u64,
    ) -> Result<u64, HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let dest = self.s2pages.get(dest_pfn)?;
        if dest.owner != Owner::KServ || dest.shared || dest.map_count > 0 {
            return Err(HypercallError::AccessDenied);
        }
        let (pa, key) = {
            let vm = self.vm(vmid)?;
            let pa = vm
                .s2
                .translate(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?;
            (pa, vm.migration_key)
        };
        let gpa_page = gpa & !(PAGE_WORDS - 1);
        let mut tag = 0xcbf29ce484222325u64;
        for i in 0..PAGE_WORDS {
            let plain = self.mem.read((pa & !(PAGE_WORDS - 1)) + i);
            self.log.push(MEvent::MemRead {
                cpu,
                who: Principal::KCore,
                pa: (pa & !(PAGE_WORDS - 1)) + i,
                oracle_masked: true,
            });
            let cipher = plain ^ Self::keystream(key, gpa_page, i);
            self.mem.write(page_addr(dest_pfn) + i, cipher);
            tag = (tag ^ cipher).wrapping_mul(0x100000001b3);
        }
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::KCore,
            pa: page_addr(dest_pfn),
        });
        self.vm_mut(vmid)?.exported.insert(gpa_page, tag);
        Ok(tag)
    }

    /// Imports a previously exported page: verifies the integrity tag,
    /// takes ownership of the ciphertext page from KServ, decrypts in
    /// place, and maps it at `gpa`. Primary lock: [`LockId::Vm`].
    pub fn import_vm_page(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        src_pfn: u64,
    ) -> Result<(), HypercallError> {
        self.lock(cpu, LockId::Vm(vmid));
        let r = self.import_vm_page_locked(cpu, vmid, gpa, src_pfn);
        self.unlock(cpu, LockId::Vm(vmid));
        r
    }

    /// Body of [`KCore::import_vm_page`].
    pub fn import_vm_page_locked(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        src_pfn: u64,
    ) -> Result<(), HypercallError> {
        self.assert_holds(cpu, LockId::Vm(vmid));
        let gpa_page = gpa & !(PAGE_WORDS - 1);
        let (key, expected) = {
            let vm = self.vm(vmid)?;
            let expected = vm
                .exported
                .get(&gpa_page)
                .copied()
                .ok_or(HypercallError::BadState)?;
            (vm.migration_key, expected)
        };
        // Verify the ciphertext tag before touching ownership.
        let mut tag = 0xcbf29ce484222325u64;
        for i in 0..PAGE_WORDS {
            let cipher = self.mem.read(page_addr(src_pfn) + i);
            tag = (tag ^ cipher).wrapping_mul(0x100000001b3);
        }
        if tag != expected {
            return Err(HypercallError::HashMismatch {
                expected,
                computed: tag,
            });
        }
        self.lock(cpu, LockId::S2Page);
        let check = match self.s2pages.get(src_pfn) {
            Ok(p) if p.owner == Owner::KServ && !p.shared && p.map_count == 0 => self
                .s2pages
                .transfer(src_pfn, Owner::KServ, Owner::Vm(vmid)),
            Ok(_) => Err(crate::s2page::OwnershipError::WrongOwner {
                actual: Owner::KServ,
            }),
            Err(e) => Err(e),
        };
        if let Err(e) = check {
            self.unlock(cpu, LockId::S2Page);
            return Err(e.into());
        }
        self.log.push(MEvent::OwnershipChange {
            cpu,
            pfn: src_pfn,
            from: Owner::KServ,
            to: Owner::Vm(vmid),
        });
        // Decrypt in place (now VM-owned, invisible to KServ).
        for i in 0..PAGE_WORDS {
            let cipher = self.mem.read(page_addr(src_pfn) + i);
            self.mem.write(
                page_addr(src_pfn) + i,
                cipher ^ Self::keystream(key, gpa_page, i),
            );
        }
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::KCore,
            pa: page_addr(src_pfn),
        });
        let behaviour = self.behaviour();
        let vm = self.vms.get(vmid as usize).expect("checked");
        let r = vm
            .s2
            .set_s2pt(
                &mut self.mem,
                &mut self.s2_pool,
                &mut self.log,
                cpu,
                behaviour,
                gpa_page,
                page_addr(src_pfn),
                Perms::RWX,
            )
            .map_err(HypercallError::from)
            .and_then(|()| self.s2pages.inc_map(src_pfn).map_err(HypercallError::from));
        self.unlock(cpu, LockId::S2Page);
        r?;
        self.vm_mut(vmid)?.exported.remove(&gpa_page);
        Ok(())
    }

    // --- data-access simulation ------------------------------------------

    /// KServ reads a physical address through its stage-2 (faulting in the
    /// identity mapping on demand). Fails if KCore refuses the mapping.
    pub fn kserv_read(&mut self, cpu: usize, pa: Addr) -> Result<Val, HypercallError> {
        let pfn = pfn_of(pa);
        if self.kserv_s2.translate(&self.mem, pa).is_none() {
            self.kserv_fault(cpu, pfn)?;
        }
        let hpa = self
            .kserv_s2
            .translate(&self.mem, pa)
            .ok_or(HypercallError::Unmapped)?;
        self.log.push(MEvent::MemRead {
            cpu,
            who: Principal::KServ,
            pa: hpa,
            oracle_masked: false,
        });
        Ok(self.mem.read(hpa))
    }

    /// KServ writes a physical address through its stage-2.
    pub fn kserv_write(&mut self, cpu: usize, pa: Addr, val: Val) -> Result<(), HypercallError> {
        let pfn = pfn_of(pa);
        if self.kserv_s2.translate(&self.mem, pa).is_none() {
            self.kserv_fault(cpu, pfn)?;
        }
        let hpa = self
            .kserv_s2
            .translate(&self.mem, pa)
            .ok_or(HypercallError::Unmapped)?;
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::KServ,
            pa: hpa,
        });
        self.mem.write(hpa, val);
        Ok(())
    }

    /// A VM reads guest-physical memory through its stage-2.
    pub fn vm_read(&mut self, cpu: usize, vmid: u32, gpa: Addr) -> Result<Val, HypercallError> {
        let pa = {
            let vm = self.vm(vmid)?;
            vm.s2
                .translate(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?
        };
        self.log.push(MEvent::MemRead {
            cpu,
            who: Principal::Vm(vmid),
            pa,
            oracle_masked: false,
        });
        Ok(self.mem.read(pa))
    }

    /// A VM writes guest-physical memory through its stage-2; the leaf
    /// entry's write permission is enforced like stage-2 hardware would.
    pub fn vm_write(
        &mut self,
        cpu: usize,
        vmid: u32,
        gpa: Addr,
        val: Val,
    ) -> Result<(), HypercallError> {
        let pa = {
            let vm = self.vm(vmid)?;
            let (pa, perms) = vm
                .s2
                .translate_with_perms(&self.mem, gpa)
                .ok_or(HypercallError::Unmapped)?;
            if !perms.w {
                return Err(HypercallError::Permission);
            }
            pa
        };
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::Vm(vmid),
            pa,
        });
        self.mem.write(pa, val);
        Ok(())
    }

    /// A device DMA write through the SMMU (write permission enforced).
    pub fn dev_dma_write(
        &mut self,
        cpu: usize,
        dev: u32,
        iova: Addr,
        val: Val,
    ) -> Result<(), HypercallError> {
        let device = self
            .devices
            .get(dev as usize)
            .ok_or(HypercallError::BadDevice)?;
        let pa = {
            let (pa, perms) = device
                .translate_with_perms(&self.mem, iova)
                .ok_or(HypercallError::Unmapped)?;
            if !perms.w {
                return Err(HypercallError::Permission);
            }
            pa
        };
        self.log.push(MEvent::MemWrite {
            cpu,
            who: Principal::Device(dev),
            pa,
        });
        self.mem.write(pa, val);
        Ok(())
    }

    /// A device DMA read through the SMMU.
    pub fn dev_dma_read(
        &mut self,
        cpu: usize,
        dev: u32,
        iova: Addr,
    ) -> Result<Val, HypercallError> {
        let device = self
            .devices
            .get(dev as usize)
            .ok_or(HypercallError::BadDevice)?;
        let pa = device
            .translate(&self.mem, iova)
            .ok_or(HypercallError::Unmapped)?;
        self.log.push(MEvent::MemRead {
            cpu,
            who: Principal::Device(dev),
            pa,
            oracle_masked: false,
        });
        Ok(self.mem.read(pa))
    }

    // --- helpers --------------------------------------------------------

    /// Computes the image hash the way `verify_vm_image` does (used by
    /// KServ/tests to stage valid images).
    pub fn image_hash(words: &[Val]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &w in words {
            h = (h ^ w).wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Immutable VM metadata access.
    pub fn vm(&self, vmid: u32) -> Result<&VmMeta, HypercallError> {
        self.vms.get(vmid as usize).ok_or(HypercallError::BadVm)
    }

    fn vm_mut(&mut self, vmid: u32) -> Result<&mut VmMeta, HypercallError> {
        self.vms.get_mut(vmid as usize).ok_or(HypercallError::BadVm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VM_POOL_PFN;

    /// Stages a 2-page image in KServ memory and boots a VM end-to-end.
    pub fn boot_vm(k: &mut KCore, cpu: usize) -> u32 {
        let pfns = vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1];
        // KServ writes the image content.
        for (i, &pfn) in pfns.iter().enumerate() {
            for w in 0..PAGE_WORDS {
                k.mem.write(page_addr(pfn) + w, (i as u64) * 1000 + w);
            }
        }
        let words: Vec<Val> = pfns
            .iter()
            .flat_map(|&pfn| (0..PAGE_WORDS).map(move |w| page_addr(pfn) + w))
            .map(|a| k.mem.read(a))
            .collect();
        let hash = KCore::image_hash(&words);
        let vmid = k.register_vm(cpu).unwrap();
        k.register_vcpu(cpu, vmid).unwrap();
        k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
        k.remap_vm_image(cpu, vmid).unwrap();
        k.verify_vm_image(cpu, vmid).unwrap();
        vmid
    }

    #[test]
    fn vm_boot_end_to_end() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        assert_eq!(k.vm(vmid).unwrap().state, VmState::Verified);
        // Image readable by the VM at gpa 0.
        assert_eq!(k.vm_read(0, vmid, 0).unwrap(), 0);
        assert_eq!(k.vm_read(0, vmid, 5).unwrap(), 5);
        assert_eq!(k.vm_read(0, vmid, PAGE_WORDS + 5).unwrap(), 1005);
    }

    #[test]
    fn image_hash_mismatch_rejected() {
        let mut k = KCore::boot(KCoreConfig::default());
        let pfns = vec![VM_POOL_PFN.0];
        let vmid = k.register_vm(0).unwrap();
        k.set_boot_info(0, vmid, pfns, 0xdead).unwrap();
        k.remap_vm_image(0, vmid).unwrap();
        assert!(matches!(
            k.verify_vm_image(0, vmid),
            Err(HypercallError::HashMismatch { .. })
        ));
    }

    #[test]
    fn unique_vmids() {
        let mut k = KCore::boot(KCoreConfig::default());
        let a = k.register_vm(0).unwrap();
        let b = k.register_vm(1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn vmid_exhaustion() {
        let mut k = KCore::boot(KCoreConfig::default());
        for _ in 0..MAX_VMS {
            k.register_vm(0).unwrap();
        }
        assert_eq!(k.register_vm(0), Err(HypercallError::NoVmidsLeft));
    }

    #[test]
    fn vcpu_run_stop_roundtrip() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        let mut ctx = k.run_vcpu(0, vmid, 0).unwrap();
        // Second CPU cannot claim it.
        assert_eq!(
            k.run_vcpu(1, vmid, 0),
            Err(HypercallError::Vcpu(VcpuError::NotInactive))
        );
        ctx.regs[3] = 7;
        k.stop_vcpu(0, vmid, 0, ctx).unwrap();
        let ctx2 = k.run_vcpu(1, vmid, 0).unwrap();
        assert_eq!(ctx2.regs[3], 7);
        k.stop_vcpu(1, vmid, 0, ctx2).unwrap();
    }

    #[test]
    fn fault_donates_scrubbed_page() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        let donor = VM_POOL_PFN.0 + 10;
        k.mem.write(page_addr(donor) + 3, 0x5ec4e7u64);
        k.handle_s2_fault(0, vmid, 16 * PAGE_WORDS, donor).unwrap();
        // Scrubbed: the VM sees zero, not KServ's old data.
        assert_eq!(k.vm_read(0, vmid, 16 * PAGE_WORDS + 3).unwrap(), 0);
        assert_eq!(k.s2pages.owner(donor).unwrap(), Owner::Vm(vmid));
    }

    #[test]
    fn kserv_cannot_fault_in_vm_pages() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        let vm_pfn = k.vm(vmid).unwrap().image_pfns[0];
        assert_eq!(
            k.kserv_read(1, page_addr(vm_pfn)),
            Err(HypercallError::AccessDenied)
        );
    }

    #[test]
    fn grant_and_revoke_sharing() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.vm_write(0, vmid, 7, 1234).unwrap();
        let pa = {
            let vm = k.vm(vmid).unwrap();
            vm.s2.translate(&k.mem, 7).unwrap()
        };
        // Before granting, KServ cannot read the VM page.
        assert!(k.kserv_read(1, pa).is_err());
        k.grant_page(0, vmid, 0).unwrap();
        assert_eq!(k.kserv_read(1, pa).unwrap(), 1234);
        k.revoke_page(0, vmid, 0).unwrap();
        // Mapping removed: the next access faults and is denied again
        // (page still owned by the VM, no longer shared).
        assert!(k.kserv_read(1, pa).is_err());
    }

    #[test]
    fn smmu_dma_isolation() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        // Device 0 assigned to the VM may map VM pages.
        k.assign_smmu_dev(0, 0, Owner::Vm(vmid)).unwrap();
        let vm_pfn = k.vm(vmid).unwrap().image_pfns[0];
        k.smmu_map(0, 0, 0, vm_pfn).unwrap();
        k.dev_dma_write(0, 0, 3, 42).unwrap();
        assert_eq!(k.vm_read(0, vmid, 3).unwrap(), 42);
        // Device 1 (KServ's) may not map VM pages.
        assert_eq!(
            k.smmu_map(0, 1, 0, vm_pfn),
            Err(HypercallError::AccessDenied)
        );
        // And no device may map KCore pages.
        assert_eq!(k.smmu_map(0, 0, 0, 0), Err(HypercallError::AccessDenied));
        k.smmu_unmap(0, 0, 0).unwrap();
        assert_eq!(k.dev_dma_read(0, 0, 3), Err(HypercallError::Unmapped));
    }

    #[test]
    fn reclaim_scrubs_and_returns_pages() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.vm_write(0, vmid, 9, 0x5ec2e7).unwrap();
        let pa = {
            let vm = k.vm(vmid).unwrap();
            vm.s2.translate(&k.mem, 9).unwrap()
        };
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.vm(vmid).unwrap().state, VmState::Destroyed);
        // The page is KServ's again and scrubbed.
        assert_eq!(k.s2pages.owner(pfn_of(pa)).unwrap(), Owner::KServ);
        assert_eq!(k.kserv_read(1, pa).unwrap(), 0);
    }

    #[test]
    fn migration_export_import_roundtrip() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        // VM writes a secret pattern into a faulted-in data page.
        let gpa = 64 * PAGE_WORDS;
        let donor = VM_POOL_PFN.0 + 10;
        k.handle_s2_fault(0, vmid, gpa, donor).unwrap();
        for i in 0..8 {
            k.vm_write(0, vmid, gpa + i, 0x1000 + i).unwrap();
        }
        // Export to a KServ page: ciphertext, not plaintext.
        let dest = VM_POOL_PFN.0 + 20;
        let tag = k.export_vm_page(0, vmid, gpa, dest).unwrap();
        assert_ne!(tag, 0);
        let cipher0 = k.mem.read(page_addr(dest));
        assert_ne!(cipher0, 0x1000, "export must not leak plaintext");
        // KServ can read the ciphertext (it owns the page) — that is fine.
        assert_eq!(k.kserv_read(1, page_addr(dest)).unwrap(), cipher0);
        // Simulate migration: unmap the original page, then import.
        {
            let behaviour = k.behaviour();
            let vm = k.vms.get(vmid as usize).unwrap();
            vm.s2
                .clear_s2pt(&mut k.mem, &k.s2_pool, &mut k.log, 0, behaviour, gpa)
                .unwrap();
        }
        k.s2pages.dec_map(donor).unwrap();
        // KServ must first unmap its own stage-2 view of the ciphertext
        // page before donating it (it faulted the page in to read it).
        k.import_vm_page(0, vmid, gpa, dest).unwrap_err();
        {
            let behaviour = k.behaviour();
            k.lock(1, crate::events::LockId::KServS2);
            k.kserv_s2
                .clear_s2pt(
                    &mut k.mem,
                    &k.s2_pool,
                    &mut k.log,
                    1,
                    behaviour,
                    page_addr(dest),
                )
                .unwrap();
            k.unlock(1, crate::events::LockId::KServS2);
            k.s2pages.dec_map(dest).unwrap();
        }
        k.import_vm_page(0, vmid, gpa, dest).unwrap();
        // The VM sees its exact old contents at the same gpa.
        for i in 0..8 {
            assert_eq!(k.vm_read(0, vmid, gpa + i).unwrap(), 0x1000 + i);
        }
        assert_eq!(k.s2pages.owner(dest).unwrap(), Owner::Vm(vmid));
    }

    #[test]
    fn migration_tamper_detected() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        let gpa = 64 * PAGE_WORDS;
        k.handle_s2_fault(0, vmid, gpa, VM_POOL_PFN.0 + 10).unwrap();
        k.vm_write(0, vmid, gpa, 777).unwrap();
        let dest = VM_POOL_PFN.0 + 20;
        k.export_vm_page(0, vmid, gpa, dest).unwrap();
        // KServ tampers with one ciphertext word.
        k.mem.write(page_addr(dest) + 3, 0xbad);
        {
            let behaviour = k.behaviour();
            let vm = k.vms.get(vmid as usize).unwrap();
            vm.s2
                .clear_s2pt(&mut k.mem, &k.s2_pool, &mut k.log, 0, behaviour, gpa)
                .unwrap();
        }
        k.s2pages.dec_map(VM_POOL_PFN.0 + 10).unwrap();
        assert!(matches!(
            k.import_vm_page(0, vmid, gpa, dest),
            Err(HypercallError::HashMismatch { .. })
        ));
    }

    #[test]
    fn export_requires_kserv_destination() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        // Destination owned by the VM itself: refused.
        let own = k.vm(vmid).unwrap().image_pfns[0];
        assert_eq!(
            k.export_vm_page(0, vmid, 0, own),
            Err(HypercallError::AccessDenied)
        );
        // KCore-private destination: refused.
        assert_eq!(
            k.export_vm_page(0, vmid, 0, 0),
            Err(HypercallError::AccessDenied)
        );
    }

    #[test]
    fn both_table_geometries_work() {
        for levels in [3u32, 4u32] {
            let mut k = KCore::boot(KCoreConfig {
                s2_levels: levels,
                ..Default::default()
            });
            let vmid = boot_vm(&mut k, 0);
            assert_eq!(k.vm_read(0, vmid, 1).unwrap(), 1, "levels={levels}");
        }
    }

    #[test]
    fn protect_page_enforces_permissions() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        let gpa = 64 * PAGE_WORDS;
        k.handle_s2_fault(0, vmid, gpa, VM_POOL_PFN.0 + 10).unwrap();
        k.vm_write(0, vmid, gpa, 55).unwrap();
        // Break-before-make to read-only.
        k.protect_vm_page(0, vmid, gpa, vrm_mmu::pte::Perms::RO)
            .unwrap();
        assert_eq!(k.vm_read(0, vmid, gpa).unwrap(), 55);
        assert_eq!(
            k.vm_write(0, vmid, gpa, 66),
            Err(HypercallError::Permission)
        );
        // And back to read-write.
        k.protect_vm_page(0, vmid, gpa, vrm_mmu::pte::Perms::RWX)
            .unwrap();
        k.vm_write(0, vmid, gpa, 66).unwrap();
        // The break-before-make sequences satisfy condition 5.
        assert!(crate::wdrf::validate_log(&k.log).is_empty());
    }

    #[test]
    fn protect_without_tlbi_caught_by_validator() {
        let mut k = KCore::boot(KCoreConfig {
            skip_tlbi_on_unmap: true,
            ..Default::default()
        });
        let vmid = boot_vm(&mut k, 0);
        let gpa = 64 * PAGE_WORDS;
        k.handle_s2_fault(0, vmid, gpa, VM_POOL_PFN.0 + 10).unwrap();
        k.protect_vm_page(0, vmid, gpa, vrm_mmu::pte::Perms::RO)
            .unwrap();
        let v = crate::wdrf::validate_log(&k.log);
        assert!(!v.is_empty(), "missing TLBI in BBM must be flagged");
    }

    #[test]
    fn dma_write_respects_permissions() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.assign_smmu_dev(0, 0, Owner::Vm(vmid)).unwrap();
        let pfn = k.vm(vmid).unwrap().image_pfns[0];
        k.smmu_map(0, 0, 0, pfn).unwrap();
        // SMMU mappings are RW: writes allowed.
        k.dev_dma_write(0, 0, 1, 9).unwrap();
        assert_eq!(k.vm_read(0, vmid, 1).unwrap(), 9);
    }

    #[test]
    fn uart_io_user_path() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        for b in b"hello" {
            k.uart_write(0, vmid, *b).unwrap();
        }
        assert_eq!(k.vm(vmid).unwrap().uart, b"hello");
        // Unverified VMs have no device model attached.
        let fresh = k.register_vm(1).unwrap();
        assert_eq!(k.uart_write(1, fresh, b'x'), Err(HypercallError::BadState));
    }

    #[test]
    fn virtual_ipi_roundtrip() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.register_vcpu(0, vmid).unwrap(); // second vCPU
                                           // vCPU 0 (on CPU 0) IPIs vCPU 1.
        k.send_sgi(0, vmid, 1, 2).unwrap();
        assert_eq!(k.pending_irqs(vmid, 1).unwrap(), vec![2]);
        assert_eq!(k.pending_irqs(vmid, 0).unwrap(), Vec::<u8>::new());
        // The target handles it.
        k.ack_irq(1, vmid, 1, 2).unwrap();
        assert!(k.pending_irqs(vmid, 1).unwrap().is_empty());
        // Acking twice is a guest bug surfaced as an error.
        assert!(matches!(
            k.ack_irq(1, vmid, 1, 2),
            Err(HypercallError::Vgic(_))
        ));
    }

    #[test]
    fn vcpu_limit_enforced() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = k.register_vm(0).unwrap();
        for _ in 0..MAX_VCPUS {
            k.register_vcpu(0, vmid).unwrap();
        }
        assert_eq!(k.register_vcpu(0, vmid), Err(HypercallError::BadVcpu));
    }

    #[test]
    fn unverified_vm_cannot_run_or_fault() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = k.register_vm(0).unwrap();
        k.register_vcpu(0, vmid).unwrap();
        assert_eq!(k.run_vcpu(0, vmid, 0), Err(HypercallError::BadState));
        assert_eq!(
            k.handle_s2_fault(0, vmid, 0, VM_POOL_PFN.0),
            Err(HypercallError::BadState)
        );
    }

    #[test]
    fn boot_info_rejects_non_kserv_pages() {
        let mut k = KCore::boot(KCoreConfig::default());
        let a = boot_vm(&mut k, 0);
        let stolen = k.vm(a).unwrap().image_pfns[0];
        let b = k.register_vm(0).unwrap();
        // VM b's image may not include VM a's pages...
        assert_eq!(
            k.set_boot_info(0, b, vec![stolen], 0),
            Err(HypercallError::AccessDenied)
        );
        // ...nor KCore's.
        assert_eq!(
            k.set_boot_info(0, b, vec![0], 0),
            Err(HypercallError::AccessDenied)
        );
    }

    #[test]
    fn operations_on_unknown_vm_fail() {
        let mut k = KCore::boot(KCoreConfig::default());
        assert_eq!(k.register_vcpu(0, 7), Err(HypercallError::BadVm));
        assert_eq!(k.vm_read(0, 7, 0), Err(HypercallError::BadVm));
        assert_eq!(k.grant_page(0, 7, 0), Err(HypercallError::BadVm));
    }

    #[test]
    fn double_reclaim_rejected() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.reclaim_vm_pages(0, vmid), Err(HypercallError::BadState));
    }

    #[test]
    fn smmu_reassignment_requires_empty_table() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = boot_vm(&mut k, 0);
        k.assign_smmu_dev(0, 0, Owner::Vm(vmid)).unwrap();
        let pfn = k.vm(vmid).unwrap().image_pfns[0];
        k.smmu_map(0, 0, 0, pfn).unwrap();
        // Reassigning a device with live mappings is refused.
        assert_eq!(
            k.assign_smmu_dev(0, 0, Owner::KServ),
            Err(HypercallError::BadState)
        );
        k.smmu_unmap(0, 0, 0).unwrap();
        k.assign_smmu_dev(0, 0, Owner::KServ).unwrap();
    }

    #[test]
    #[should_panic(expected = "lock discipline violated")]
    fn lock_discipline_is_asserted() {
        let mut k = KCore::boot(KCoreConfig::default());
        // Calling a body without holding the primary lock panics.
        let _ = k.register_vm_locked(0);
    }
}
