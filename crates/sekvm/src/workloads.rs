//! Named machine-layer schedule workloads.
//!
//! The bench harness, the mutation campaign and the serve daemon all
//! exercise the same every-schedule scenarios; this module is the one
//! place their scripts are defined, so a workload *name* (as submitted
//! to `vrm-serve` or printed in `BENCH_explore.json`) means the same
//! program everywhere.

use crate::layout::{KSERV_PFN, PAGE_WORDS, VM_POOL_PFN};
use crate::machine::{Op, Script};

/// The `unmap` workload: a minimal two-CPU map → grant → revoke
/// sequence with VmId-lock contention. Small enough for every-schedule
/// exploration, rich enough to touch the whole KCore surface.
pub fn unmap() -> Vec<Script> {
    let gpa = 64 * PAGE_WORDS;
    vec![
        vec![
            Op::RegisterVm,
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::Grant { gpa },
            Op::Revoke { gpa },
        ],
        vec![Op::RegisterVm],
    ]
}

/// The `mirror` workload: two CPUs running *identical* scripts — each
/// registers its own VM and vCPU, then probes a KServ-owned page and a
/// KCore-private page from KServ context. Everything the two CPUs do
/// is fully symmetric (no script names a CPU index, no shared pages),
/// so the schedule space is invariant under swapping them: the
/// canonical exercise for the machine layer's orbit collapse.
pub fn mirror() -> Vec<Script> {
    let kserv_pa = KSERV_PFN.0 * PAGE_WORDS;
    let kcore_pa = PAGE_WORDS;
    let script = vec![
        Op::RegisterVm,
        Op::RegisterVcpu,
        Op::KservRead {
            pa: kserv_pa,
            expect_allowed: true,
        },
        Op::KservRead {
            pa: kcore_pa,
            expect_allowed: false,
        },
    ];
    vec![script.clone(), script]
}

/// Looks up a workload's scripts by name. Current names: `"unmap"`,
/// `"mirror"`.
pub fn by_name(name: &str) -> Option<Vec<Script>> {
    match name {
        "unmap" => Some(unmap()),
        "mirror" => Some(mirror()),
        _ => None,
    }
}

/// Every servable workload name, in registry order.
pub const NAMES: &[&str] = &["unmap", "mirror"];
