//! Named machine-layer schedule workloads.
//!
//! The bench harness, the mutation campaign and the serve daemon all
//! exercise the same every-schedule scenarios; this module is the one
//! place their scripts are defined, so a workload *name* (as submitted
//! to `vrm-serve` or printed in `BENCH_explore.json`) means the same
//! program everywhere.

use crate::layout::{PAGE_WORDS, VM_POOL_PFN};
use crate::machine::{Op, Script};

/// The `unmap` workload: a minimal two-CPU map → grant → revoke
/// sequence with VmId-lock contention. Small enough for every-schedule
/// exploration, rich enough to touch the whole KCore surface.
pub fn unmap() -> Vec<Script> {
    let gpa = 64 * PAGE_WORDS;
    vec![
        vec![
            Op::RegisterVm,
            Op::RegisterVcpu,
            Op::StageImage {
                pfns: vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1],
            },
            Op::VerifyImage,
            Op::Fault {
                gpa,
                donor_pfn: VM_POOL_PFN.0 + 4,
            },
            Op::Grant { gpa },
            Op::Revoke { gpa },
        ],
        vec![Op::RegisterVm],
    ]
}

/// Looks up a workload's scripts by name. Current names: `"unmap"`.
pub fn by_name(name: &str) -> Option<Vec<Script>> {
    match name {
        "unmap" => Some(unmap()),
        _ => None,
    }
}

/// Every servable workload name, in registry order.
pub const NAMES: &[&str] = &["unmap"];
