//! VM confidentiality and integrity checking (§5.3).
//!
//! SeKVM's verified guarantee is that KServ and other VMs can neither read
//! nor modify a VM's memory. This module provides:
//!
//! * [`check_invariants`] — the system invariants the proofs rely on:
//!   stage-2/SMMU translation stays enabled, no KCore-private page is ever
//!   mapped into a stage-2 or SMMU table, and every mapping is consistent
//!   with the `s2page` ownership (a VM's table maps only pages it owns;
//!   KServ's table maps only KServ-owned or explicitly shared pages);
//! * attack-scenario helpers used by the test-suite and examples.
//!
//! Since the refinement-spec layer landed, the invariants are no longer a
//! hand-written sweep over the concrete tables: [`check_invariants`]
//! projects the machine through [`refine::abstract_of`](crate::refine)
//! and evaluates [`vrm_spec::noninterference`] on the abstract state —
//! the paper's structure, where isolation is proved once on the small
//! abstract machine and holds for the concrete system by refinement. The
//! concrete [`InvariantViolation`] vocabulary is kept so existing callers
//! and reports are unchanged.

use crate::events::TableKind;
use crate::kcore::KCore;
use crate::refine;
use crate::s2page::Owner;
use vrm_spec::{noninterference, AbsOwner, AbsTable, NiViolation};

/// An invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Stage-2 translation was disabled.
    Stage2Disabled,
    /// The SMMU was disabled.
    SmmuDisabled,
    /// A KCore-private page is mapped in a user-visible table.
    KCorePageMapped {
        /// The table containing the mapping.
        table: TableKind,
        /// The mapped physical page.
        pfn: u64,
    },
    /// A mapping is inconsistent with page ownership.
    OwnershipMismatch {
        /// The table containing the mapping.
        table: TableKind,
        /// The mapped page.
        pfn: u64,
        /// The page's recorded owner.
        owner: Owner,
    },
}

fn concrete_table(t: AbsTable) -> TableKind {
    match t {
        AbsTable::Host => TableKind::Stage2(None),
        AbsTable::Vm(v) => TableKind::Stage2(Some(v)),
        AbsTable::Dev(d) => TableKind::Smmu(d),
    }
}

fn concrete_owner(o: AbsOwner) -> Owner {
    match o {
        AbsOwner::Hyp => Owner::KCore,
        AbsOwner::Host => Owner::KServ,
        AbsOwner::Vm(v) => Owner::Vm(v),
    }
}

/// Checks the §5.3 invariants over the current machine state.
///
/// Derived, not hand-rolled: the machine is projected onto the abstract
/// ownership machine and [`vrm_spec::noninterference`] is evaluated
/// there; each abstract violation is translated back into the concrete
/// [`InvariantViolation`] vocabulary. Any concrete table/ownership
/// inconsistency survives the projection (the projection reads the same
/// page tables and `s2page` array the old sweep did), so this is the
/// same check — stated once, at the spec level.
pub fn check_invariants(k: &KCore) -> Vec<InvariantViolation> {
    let uni = refine::universe();
    let abs = refine::abstract_of(k);
    noninterference(&uni, &abs)
        .into_iter()
        .map(|v| match v {
            NiViolation::TranslationOff => InvariantViolation::Stage2Disabled,
            NiViolation::DmaUnprotected => InvariantViolation::SmmuDisabled,
            NiViolation::HypFrameMapped { table, frame } => InvariantViolation::KCorePageMapped {
                table: concrete_table(table),
                pfn: frame,
            },
            NiViolation::OwnershipMismatch {
                table,
                frame,
                owner,
            } => InvariantViolation::OwnershipMismatch {
                table: concrete_table(table),
                pfn: frame,
                owner: concrete_owner(owner),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::{HypercallError, KCoreConfig, VmState};
    use crate::layout::{page_addr, pfn_of, PAGE_WORDS, VM_POOL_PFN};

    fn booted_vm(k: &mut KCore, cpu: usize, base: u64) -> u32 {
        let pfns = vec![base, base + 1];
        let mut words = Vec::new();
        for &pfn in &pfns {
            for w in 0..PAGE_WORDS {
                let v = pfn * 7 + w;
                k.mem.write(page_addr(pfn) + w, v);
                words.push(v);
            }
        }
        let hash = KCore::image_hash(&words);
        let vmid = k.register_vm(cpu).unwrap();
        k.register_vcpu(cpu, vmid).unwrap();
        k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
        k.remap_vm_image(cpu, vmid).unwrap();
        k.verify_vm_image(cpu, vmid).unwrap();
        vmid
    }

    #[test]
    fn invariants_hold_after_boot() {
        let mut k = KCore::boot(KCoreConfig::default());
        let _ = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn confidentiality_kserv_cannot_read_vm_secret() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        // The VM writes a secret.
        k.vm_write(0, vmid, 5, 0xdeadbeef).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        // KServ cannot read it through its stage-2.
        assert_eq!(k.kserv_read(1, pa), Err(HypercallError::AccessDenied));
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn integrity_kserv_cannot_corrupt_vm_memory() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 77).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        assert!(k.kserv_write(1, pa, 666).is_err());
        assert_eq!(k.vm_read(0, vmid, 5).unwrap(), 77);
    }

    #[test]
    fn vms_are_isolated_from_each_other() {
        let mut k = KCore::boot(KCoreConfig::default());
        let a = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        let b = booted_vm(&mut k, 1, VM_POOL_PFN.0 + 8);
        k.vm_write(0, a, 3, 111).unwrap();
        k.vm_write(1, b, 3, 222).unwrap();
        assert_eq!(k.vm_read(0, a, 3).unwrap(), 111);
        assert_eq!(k.vm_read(1, b, 3).unwrap(), 222);
        // VM b's stage-2 cannot reach VM a's pages: translations target
        // disjoint physical pages.
        let pa_a = k.vm(a).unwrap().s2.translate(&k.mem, 3).unwrap();
        let pa_b = k.vm(b).unwrap().s2.translate(&k.mem, 3).unwrap();
        assert_ne!(pfn_of(pa_a), pfn_of(pa_b));
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn broken_ownership_check_caught_by_invariants() {
        let mut k = KCore::boot(KCoreConfig {
            skip_ownership_check: true,
            ..Default::default()
        });
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        let vm_pfn = k.vm(vmid).unwrap().image_pfns[0];
        // The mutant lets KServ fault in a mapping of the VM's page...
        k.kserv_fault(1, vm_pfn).unwrap();
        // ...which the ownership invariant detects.
        let v = check_invariants(&k);
        assert!(
            v.iter().any(|x| matches!(
                x,
                InvariantViolation::OwnershipMismatch {
                    table: TableKind::Stage2(None),
                    ..
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn scrub_mutant_leaks_secrets_on_reclaim() {
        // With scrubbing: reclaimed page reads as zero to KServ.
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 0x5ec2e7).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.kserv_read(1, pa).unwrap(), 0);

        // Without scrubbing: the secret leaks.
        let mut k = KCore::boot(KCoreConfig {
            skip_scrub_on_reclaim: true,
            ..Default::default()
        });
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 0x5ec2e7).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.kserv_read(1, pa).unwrap(), 0x5ec2e7);
    }

    #[test]
    fn destroyed_vm_state() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.vm(vmid).unwrap().state, VmState::Destroyed);
        assert!(check_invariants(&k).is_empty());
    }
}
