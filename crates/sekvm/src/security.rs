//! VM confidentiality and integrity checking (§5.3).
//!
//! SeKVM's verified guarantee is that KServ and other VMs can neither read
//! nor modify a VM's memory. This module provides:
//!
//! * [`check_invariants`] — the system invariants the proofs rely on:
//!   stage-2/SMMU translation stays enabled, no KCore-private page is ever
//!   mapped into a stage-2 or SMMU table, and every mapping is consistent
//!   with the `s2page` ownership (a VM's table maps only pages it owns;
//!   KServ's table maps only KServ-owned or explicitly shared pages);
//! * attack-scenario helpers used by the test-suite and examples.

use crate::events::TableKind;
use crate::kcore::KCore;
use crate::layout::{is_kcore_private, pfn_of};
use crate::s2page::Owner;

/// An invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Stage-2 translation was disabled.
    Stage2Disabled,
    /// The SMMU was disabled.
    SmmuDisabled,
    /// A KCore-private page is mapped in a user-visible table.
    KCorePageMapped {
        /// The table containing the mapping.
        table: TableKind,
        /// The mapped physical page.
        pfn: u64,
    },
    /// A mapping is inconsistent with page ownership.
    OwnershipMismatch {
        /// The table containing the mapping.
        table: TableKind,
        /// The mapped page.
        pfn: u64,
        /// The page's recorded owner.
        owner: Owner,
    },
}

/// Checks the §5.3 invariants over the current machine state.
pub fn check_invariants(k: &KCore) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if !k.stage2_enabled {
        out.push(InvariantViolation::Stage2Disabled);
    }
    if !k.smmu_enabled {
        out.push(InvariantViolation::SmmuDisabled);
    }
    // KServ's stage-2: only KServ-owned or shared pages.
    for m in k.kserv_s2.mappings(&k.mem) {
        let pfn = pfn_of(m.pa);
        if is_kcore_private(pfn) {
            out.push(InvariantViolation::KCorePageMapped {
                table: TableKind::Stage2(None),
                pfn,
            });
            continue;
        }
        match k.s2pages.get(pfn) {
            Ok(p) if p.owner == Owner::KServ || p.shared => {}
            Ok(p) => out.push(InvariantViolation::OwnershipMismatch {
                table: TableKind::Stage2(None),
                pfn,
                owner: p.owner,
            }),
            Err(_) => {}
        }
    }
    // Each VM's stage-2: only pages owned by that VM.
    for vm in &k.vms {
        for m in vm.s2.mappings(&k.mem) {
            let pfn = pfn_of(m.pa);
            if is_kcore_private(pfn) {
                out.push(InvariantViolation::KCorePageMapped {
                    table: TableKind::Stage2(Some(vm.vmid)),
                    pfn,
                });
                continue;
            }
            match k.s2pages.get(pfn) {
                Ok(p) if p.owner == Owner::Vm(vm.vmid) => {}
                Ok(p) => out.push(InvariantViolation::OwnershipMismatch {
                    table: TableKind::Stage2(Some(vm.vmid)),
                    pfn,
                    owner: p.owner,
                }),
                Err(_) => {}
            }
        }
    }
    // SMMU tables: only pages owned by the assigned principal.
    for dev in &k.devices {
        for m in dev.mappings(&k.mem) {
            let pfn = pfn_of(m.pa);
            if is_kcore_private(pfn) {
                out.push(InvariantViolation::KCorePageMapped {
                    table: TableKind::Smmu(dev.dev),
                    pfn,
                });
                continue;
            }
            match k.s2pages.get(pfn) {
                Ok(p) if p.owner == dev.assigned_to => {}
                Ok(p) => out.push(InvariantViolation::OwnershipMismatch {
                    table: TableKind::Smmu(dev.dev),
                    pfn,
                    owner: p.owner,
                }),
                Err(_) => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::{HypercallError, KCoreConfig, VmState};
    use crate::layout::{page_addr, PAGE_WORDS, VM_POOL_PFN};

    fn booted_vm(k: &mut KCore, cpu: usize, base: u64) -> u32 {
        let pfns = vec![base, base + 1];
        let mut words = Vec::new();
        for &pfn in &pfns {
            for w in 0..PAGE_WORDS {
                let v = pfn * 7 + w;
                k.mem.write(page_addr(pfn) + w, v);
                words.push(v);
            }
        }
        let hash = KCore::image_hash(&words);
        let vmid = k.register_vm(cpu).unwrap();
        k.register_vcpu(cpu, vmid).unwrap();
        k.set_boot_info(cpu, vmid, pfns, hash).unwrap();
        k.remap_vm_image(cpu, vmid).unwrap();
        k.verify_vm_image(cpu, vmid).unwrap();
        vmid
    }

    #[test]
    fn invariants_hold_after_boot() {
        let mut k = KCore::boot(KCoreConfig::default());
        let _ = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn confidentiality_kserv_cannot_read_vm_secret() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        // The VM writes a secret.
        k.vm_write(0, vmid, 5, 0xdeadbeef).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        // KServ cannot read it through its stage-2.
        assert_eq!(k.kserv_read(1, pa), Err(HypercallError::AccessDenied));
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn integrity_kserv_cannot_corrupt_vm_memory() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 77).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        assert!(k.kserv_write(1, pa, 666).is_err());
        assert_eq!(k.vm_read(0, vmid, 5).unwrap(), 77);
    }

    #[test]
    fn vms_are_isolated_from_each_other() {
        let mut k = KCore::boot(KCoreConfig::default());
        let a = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        let b = booted_vm(&mut k, 1, VM_POOL_PFN.0 + 8);
        k.vm_write(0, a, 3, 111).unwrap();
        k.vm_write(1, b, 3, 222).unwrap();
        assert_eq!(k.vm_read(0, a, 3).unwrap(), 111);
        assert_eq!(k.vm_read(1, b, 3).unwrap(), 222);
        // VM b's stage-2 cannot reach VM a's pages: translations target
        // disjoint physical pages.
        let pa_a = k.vm(a).unwrap().s2.translate(&k.mem, 3).unwrap();
        let pa_b = k.vm(b).unwrap().s2.translate(&k.mem, 3).unwrap();
        assert_ne!(pfn_of(pa_a), pfn_of(pa_b));
        assert!(check_invariants(&k).is_empty());
    }

    #[test]
    fn broken_ownership_check_caught_by_invariants() {
        let mut k = KCore::boot(KCoreConfig {
            skip_ownership_check: true,
            ..Default::default()
        });
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        let vm_pfn = k.vm(vmid).unwrap().image_pfns[0];
        // The mutant lets KServ fault in a mapping of the VM's page...
        k.kserv_fault(1, vm_pfn).unwrap();
        // ...which the ownership invariant detects.
        let v = check_invariants(&k);
        assert!(
            v.iter().any(|x| matches!(
                x,
                InvariantViolation::OwnershipMismatch {
                    table: TableKind::Stage2(None),
                    ..
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn scrub_mutant_leaks_secrets_on_reclaim() {
        // With scrubbing: reclaimed page reads as zero to KServ.
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 0x5ec2e7).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.kserv_read(1, pa).unwrap(), 0);

        // Without scrubbing: the secret leaks.
        let mut k = KCore::boot(KCoreConfig {
            skip_scrub_on_reclaim: true,
            ..Default::default()
        });
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.vm_write(0, vmid, 5, 0x5ec2e7).unwrap();
        let pa = k.vm(vmid).unwrap().s2.translate(&k.mem, 5).unwrap();
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.kserv_read(1, pa).unwrap(), 0x5ec2e7);
    }

    #[test]
    fn destroyed_vm_state() {
        let mut k = KCore::boot(KCoreConfig::default());
        let vmid = booted_vm(&mut k, 0, VM_POOL_PFN.0);
        k.reclaim_vm_pages(0, vmid).unwrap();
        assert_eq!(k.vm(vmid).unwrap().state, VmState::Destroyed);
        assert!(check_invariants(&k).is_empty());
    }
}
