//! Dynamic wDRF validation over machine executions (§5).
//!
//! The litmus-scale proofs-by-enumeration live in `vrm-core`; these
//! validators check the same conditions on full SeKVM executions:
//!
//! * condition 1/2 (DRF-Kernel / No-Barrier-Misuse) — lock discipline:
//!   every page-table write happens while its guarding lock is held (the
//!   lock implementation itself is the verified Figure 7 ticket lock);
//! * condition 3 (Write-Once-Kernel-Mapping) — no EL2 page-table write
//!   ever replaces a non-empty entry;
//! * condition 4 (Transactional-Page-Table) — checked inline per
//!   operation by [`npt`](crate::npt) (enable
//!   [`KCoreConfig::check_transactional`](crate::kcore::KCoreConfig));
//! * condition 5 (Sequential-TLB-Invalidation) — every stage-2/SMMU
//!   unmap or remap is followed by a barrier and a TLBI before the
//!   operation completes;
//! * condition 6 (Memory-Isolation, weak form) — KCore never reads
//!   KServ/VM memory except through oracle-masked reads, and no user
//!   principal ever writes KCore-private memory.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::events::{LockId, Log, MEvent, Principal, TableKind};
use crate::layout::{is_kcore_private, pfn_of};

/// A wDRF violation found in a machine log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WdrfViolation {
    /// Condition 1/2: a page-table write without the guarding lock.
    UnlockedPtWrite {
        /// Offending CPU.
        cpu: usize,
        /// The table written.
        table: TableKind,
        /// Locks the CPU held at the time.
        held: Vec<LockId>,
    },
    /// Condition 3: an EL2 entry was overwritten.
    El2Overwrite {
        /// Offending CPU.
        cpu: usize,
        /// The cell.
        cell: u64,
        /// The non-zero entry that was replaced.
        old: u64,
    },
    /// Condition 5: an unmap/remap completed without barrier + TLBI.
    MissingTlbi {
        /// Offending CPU.
        cpu: usize,
        /// The table.
        table: TableKind,
        /// The unmapped cell.
        cell: u64,
        /// Whether a TLBI appeared at all (false) or only the barrier was
        /// missing (true).
        tlbi_seen: bool,
    },
    /// Condition 6: KCore read user memory without oracle masking.
    UnmaskedKernelRead {
        /// Offending CPU.
        cpu: usize,
        /// The address read.
        pa: u64,
    },
    /// Condition 6: a user principal wrote KCore-private memory.
    UserWriteToKernel {
        /// The principal.
        who: Principal,
        /// The address written.
        pa: u64,
    },
}

/// Which lock guards writes to a table.
fn guarding_lock(table: TableKind) -> Vec<LockId> {
    match table {
        TableKind::El2 => vec![LockId::El2],
        TableKind::Stage2(None) => vec![LockId::KServS2],
        // A VM's stage-2 may be written under its VM lock; population
        // changes also hold S2Page.
        TableKind::Stage2(Some(v)) => vec![LockId::Vm(v)],
        TableKind::Smmu(d) => vec![LockId::Smmu(d)],
    }
}

/// Validates conditions 1/2 (lock discipline), 3, 5 and 6 over a log.
pub fn validate_log(log: &Log) -> Vec<WdrfViolation> {
    let mut violations = Vec::new();
    // Locks currently held, per CPU.
    let mut held: BTreeMap<usize, BTreeSet<LockId>> = BTreeMap::new();
    // Unmaps/remaps awaiting barrier + TLBI, per CPU:
    // (table, cell, barrier_seen).
    let mut pending: BTreeMap<usize, Vec<(TableKind, u64, bool)>> = BTreeMap::new();

    for ev in log {
        match ev {
            MEvent::LockAcquire { cpu, lock, .. } => {
                held.entry(*cpu).or_default().insert(*lock);
            }
            MEvent::LockRelease { cpu, lock } => {
                held.entry(*cpu).or_default().remove(lock);
            }
            MEvent::PtWrite {
                cpu,
                table,
                cell,
                old,
                new,
            } => {
                let h = held.entry(*cpu).or_default();
                let guards = guarding_lock(*table);
                if !guards.iter().any(|g| h.contains(g)) {
                    violations.push(WdrfViolation::UnlockedPtWrite {
                        cpu: *cpu,
                        table: *table,
                        held: h.iter().copied().collect(),
                    });
                }
                if *table == TableKind::El2 && *old != 0 {
                    violations.push(WdrfViolation::El2Overwrite {
                        cpu: *cpu,
                        cell: *cell,
                        old: *old,
                    });
                }
                // Unmap or remap of a live user-walked entry.
                if *table != TableKind::El2 && *old != 0 && *new != *old {
                    pending
                        .entry(*cpu)
                        .or_default()
                        .push((*table, *cell, false));
                }
            }
            MEvent::Barrier { cpu } => {
                if let Some(p) = pending.get_mut(cpu) {
                    for entry in p.iter_mut() {
                        entry.2 = true;
                    }
                }
            }
            MEvent::Tlbi { cpu, table, .. } => {
                if let Some(p) = pending.get_mut(cpu) {
                    p.retain(|(t, cell, fenced)| {
                        if t == table {
                            if !*fenced {
                                violations.push(WdrfViolation::MissingTlbi {
                                    cpu: *cpu,
                                    table: *t,
                                    cell: *cell,
                                    tlbi_seen: true,
                                });
                            }
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            MEvent::OpEnd { cpu, .. } => {
                if let Some(p) = pending.remove(cpu) {
                    for (table, cell, _) in p {
                        violations.push(WdrfViolation::MissingTlbi {
                            cpu: *cpu,
                            table,
                            cell,
                            tlbi_seen: false,
                        });
                    }
                }
            }
            MEvent::MemRead {
                cpu,
                who,
                pa,
                oracle_masked,
            } if *who == Principal::KCore && !oracle_masked && !is_kcore_private(pfn_of(*pa)) => {
                violations.push(WdrfViolation::UnmaskedKernelRead { cpu: *cpu, pa: *pa });
            }
            MEvent::MemWrite { who, pa, .. }
                if *who != Principal::KCore && is_kcore_private(pfn_of(*pa)) =>
            {
                violations.push(WdrfViolation::UserWriteToKernel { who: *who, pa: *pa });
            }
            _ => {}
        }
    }
    // Unmaps still pending at the end of the log never got their TLBI.
    for (cpu, p) in pending {
        for (table, cell, _) in p {
            violations.push(WdrfViolation::MissingTlbi {
                cpu,
                table,
                cell,
                tlbi_seen: false,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::KCoreConfig;
    use crate::layout::VM_POOL_PFN;
    use crate::machine::{lifecycle_script, Machine};

    fn scripts(n: usize) -> Vec<crate::machine::Script> {
        (0..n)
            .map(|i| {
                lifecycle_script(
                    i as u64,
                    VM_POOL_PFN.0 + (i as u64) * 8,
                    VM_POOL_PFN.0 + (i as u64) * 8 + 4,
                )
            })
            .collect()
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut m = Machine::new(KCoreConfig::default(), scripts(4), 1);
        let report = m.run(1_000_000);
        assert!(report.clean(), "{report:?}");
        let v = validate_log(&m.kcore.log);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clean_run_many_seeds() {
        for seed in 0..10 {
            let mut m = Machine::new(KCoreConfig::default(), scripts(3), seed);
            let report = m.run(1_000_000);
            assert!(report.clean(), "seed {seed}: {report:?}");
            let v = validate_log(&m.kcore.log);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn el2_overwrite_detected_in_log() {
        // Synthetic log: a raw overwrite of a non-empty EL2 entry (no
        // structural path produces this — set_el2_pt refuses — but the
        // monitor must still catch a hypothetical bypass).
        let log = vec![
            MEvent::LockAcquire {
                cpu: 0,
                lock: LockId::El2,
                ticket: 0,
                spins: 0,
            },
            MEvent::PtWrite {
                cpu: 0,
                table: TableKind::El2,
                cell: 0x2000,
                old: 0x41,
                new: 0x81,
            },
            MEvent::LockRelease {
                cpu: 0,
                lock: LockId::El2,
            },
        ];
        let v = validate_log(&log);
        assert!(v
            .iter()
            .any(|x| matches!(x, WdrfViolation::El2Overwrite { old: 0x41, .. })));
    }

    #[test]
    fn unlocked_pt_write_detected_in_log() {
        let log = vec![MEvent::PtWrite {
            cpu: 1,
            table: TableKind::Stage2(Some(3)),
            cell: 0x3000,
            old: 0,
            new: 0x41,
        }];
        let v = validate_log(&log);
        assert!(v
            .iter()
            .any(|x| matches!(x, WdrfViolation::UnlockedPtWrite { cpu: 1, .. })));
    }

    #[test]
    fn kernel_unmasked_read_detected_in_log() {
        let log = vec![MEvent::MemRead {
            cpu: 0,
            who: Principal::KCore,
            pa: crate::layout::page_addr(crate::layout::KSERV_PFN.0),
            oracle_masked: false,
        }];
        let v = validate_log(&log);
        assert!(v
            .iter()
            .any(|x| matches!(x, WdrfViolation::UnmaskedKernelRead { .. })));
        // The same read with oracle masking is fine (§5.3).
        let log = vec![MEvent::MemRead {
            cpu: 0,
            who: Principal::KCore,
            pa: crate::layout::page_addr(crate::layout::KSERV_PFN.0),
            oracle_masked: true,
        }];
        assert!(validate_log(&log).is_empty());
    }

    #[test]
    fn missing_tlbi_mutant_caught() {
        let cfg = KCoreConfig {
            skip_tlbi_on_unmap: true,
            ..Default::default()
        };
        let mut m = Machine::new(cfg, scripts(2), 5);
        m.run(1_000_000);
        let v = validate_log(&m.kcore.log);
        assert!(
            v.iter().any(|x| matches!(
                x,
                WdrfViolation::MissingTlbi {
                    tlbi_seen: false,
                    ..
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn missing_barrier_mutant_caught() {
        let cfg = KCoreConfig {
            skip_barrier_before_tlbi: true,
            ..Default::default()
        };
        let mut m = Machine::new(cfg, scripts(2), 5);
        m.run(1_000_000);
        let v = validate_log(&m.kcore.log);
        assert!(
            v.iter().any(|x| matches!(
                x,
                WdrfViolation::MissingTlbi {
                    tlbi_seen: true,
                    ..
                }
            )),
            "{v:?}"
        );
    }
}
