//! An executable model of SeKVM (§5 of the VRM paper).
//!
//! SeKVM retrofits the Linux KVM hypervisor into a small trusted core,
//! **KCore**, running at EL2, plus an untrusted host, **KServ**. KCore
//! controls stage-2 (nested) page tables for KServ and every VM, SMMU page
//! tables for DMA-capable devices, and its own EL2 page table; it tracks
//! the owner of every physical page in the `s2page` array so that VM
//! memory is never accessible to KServ or other VMs.
//!
//! This crate rebuilds that system as a deterministic multiprocessor
//! simulation:
//!
//! * [`layout`] — the physical memory map (KCore region, scrubbed page
//!   pools, KServ and VM memory);
//! * [`ticketlock`] — the Figure 7 ticket lock with fairness semantics
//!   and contention statistics (its relaxed-memory correctness is proven
//!   at litmus scale in `vrm-core`);
//! * [`s2page`] — per-page ownership and sharing state;
//! * [`el2pt`] — KCore's own page table: boot-time linear map,
//!   `set_el2_pt` / `remap_pfn`, write-once enforced;
//! * [`npt`] — stage-2 page tables (`set_s2pt` / `clear_s2pt`, 3- and
//!   4-level) with per-operation Transactional-Page-Table checking;
//! * [`smmu`] — SMMU page tables (`set_spt` / `clear_spt`);
//! * [`vcpu`] — vCPU contexts and the ACTIVE/INACTIVE ownership protocol;
//! * [`events`] — the machine event log consumed by the validators;
//! * [`kcore`] — the hypercall layer (VM registration and boot with image
//!   authentication, stage-2 fault handling, grant/revoke, SMMU
//!   assignment, context switching);
//! * [`machine`] — the multiprocessor scheduler running per-CPU scripts;
//! * [`wdrf`] — dynamic validators for the wDRF conditions over machine
//!   executions;
//! * [`refine`] — the projection onto `vrm-spec`'s abstract ownership
//!   machine and the per-transition refinement check;
//! * [`security`] — VM confidentiality/integrity checkers and the §5.3
//!   system invariants, derived from abstract noninterference;
//! * [`mutants`] — deliberately broken KCore variants demonstrating that
//!   the validators catch condition violations.

#![warn(missing_docs)]

pub mod el2pt;
pub mod events;
pub mod kcore;
pub mod layout;
pub mod machine;
pub mod mutants;
pub mod npt;
pub mod refine;
pub mod s2page;
pub mod security;
pub mod smmu;
pub mod ticketlock;
pub mod vcpu;
pub mod vgic;
pub mod wdrf;
pub mod workloads;

pub use events::{LockId, MEvent, Principal};
pub use kcore::{HypercallError, KCore, KCoreConfig};
pub use machine::{Machine, Op, RunReport, Script};
pub use s2page::Owner;
