//! vCPU contexts and the ACTIVE/INACTIVE ownership protocol (§5.2,
//! Figure 2).
//!
//! A vCPU context is protected not by a lock but by a state variable: a
//! physical CPU may only restore a context whose state is `Inactive`,
//! flipping it to `Active`, and flips it back after saving. The
//! relaxed-memory soundness of this protocol (store-release on the state,
//! load-acquire when checking) is established at litmus scale by
//! `vrm_core::paper_examples::example3`; here the protocol is enforced as
//! a state machine with panics mirroring Figure 2's `panic()`.

/// Architectural register file of one vCPU (abbreviated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VcpuCtx {
    /// General-purpose registers.
    pub regs: [u64; 8],
    /// Program counter.
    pub pc: u64,
    /// Monotonic generation counter (bumped on every save, used by tests
    /// to detect stale restores).
    pub generation: u64,
}

/// The ownership state of a vCPU context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcpuState {
    /// Not running anywhere; the context is current.
    Inactive,
    /// Running on the given physical CPU.
    Active {
        /// The physical CPU running this vCPU.
        cpu: usize,
    },
}

/// Errors from the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcpuError {
    /// Attempt to restore a context that is not `Inactive` (Figure 2's
    /// `panic()` branch).
    NotInactive,
    /// Attempt to save from a CPU that is not the active owner.
    NotOwner,
}

impl std::fmt::Display for VcpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcpuError::NotInactive => write!(f, "vCPU context is not INACTIVE"),
            VcpuError::NotOwner => write!(f, "saving CPU does not own the vCPU"),
        }
    }
}

impl std::error::Error for VcpuError {}

/// One vCPU.
#[derive(Debug, Clone)]
pub struct Vcpu {
    /// Saved context (valid while `Inactive`).
    pub ctx: VcpuCtx,
    /// Current protocol state.
    pub state: VcpuState,
}

impl Default for Vcpu {
    fn default() -> Self {
        Vcpu {
            ctx: VcpuCtx::default(),
            state: VcpuState::Inactive,
        }
    }
}

impl Vcpu {
    /// `restore_vm`: claim the context for `cpu` and hand out a copy.
    pub fn restore(&mut self, cpu: usize) -> Result<VcpuCtx, VcpuError> {
        match self.state {
            VcpuState::Inactive => {
                self.state = VcpuState::Active { cpu };
                Ok(self.ctx)
            }
            VcpuState::Active { .. } => Err(VcpuError::NotInactive),
        }
    }

    /// `save_vm`: store the (possibly modified) context back and release.
    pub fn save(&mut self, cpu: usize, mut ctx: VcpuCtx) -> Result<(), VcpuError> {
        match self.state {
            VcpuState::Active { cpu: owner } if owner == cpu => {
                ctx.generation = self.ctx.generation + 1;
                self.ctx = ctx;
                self.state = VcpuState::Inactive;
                Ok(())
            }
            _ => Err(VcpuError::NotOwner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_save_roundtrip() {
        let mut v = Vcpu::default();
        let mut ctx = v.restore(0).unwrap();
        ctx.regs[0] = 99;
        ctx.pc = 0x1000;
        v.save(0, ctx).unwrap();
        assert_eq!(v.state, VcpuState::Inactive);
        assert_eq!(v.ctx.regs[0], 99);
        assert_eq!(v.ctx.generation, 1);
    }

    #[test]
    fn double_restore_rejected() {
        let mut v = Vcpu::default();
        v.restore(0).unwrap();
        assert_eq!(v.restore(1), Err(VcpuError::NotInactive));
    }

    #[test]
    fn save_by_non_owner_rejected() {
        let mut v = Vcpu::default();
        v.restore(0).unwrap();
        assert_eq!(v.save(1, VcpuCtx::default()), Err(VcpuError::NotOwner));
        // Owner can still save.
        v.save(0, VcpuCtx::default()).unwrap();
    }

    #[test]
    fn generation_detects_progress() {
        let mut v = Vcpu::default();
        for i in 1..=3 {
            let ctx = v.restore(2).unwrap();
            v.save(2, ctx).unwrap();
            assert_eq!(v.ctx.generation, i);
        }
    }
}
