//! KCore's own EL2 page table (§5.1).
//!
//! At boot all physical memory is mapped into a contiguous EL2 virtual
//! region (the linear map), using block entries like the Linux kernel's
//! direct map. Afterwards the table is only ever *extended*: the single
//! primitive `set_el2_pt` maps a page at a previously-empty entry, and the
//! `remap_pfn` hypercall uses it to alias VM-image pages into a contiguous
//! region for hashing. Nothing is ever unmapped or remapped — the
//! Write-Once-Kernel-Mapping condition.

use vrm_memmodel::ir::Addr;
use vrm_mmu::mem::PhysMem;
use vrm_mmu::pool::PagePool;
use vrm_mmu::pte::Perms;
use vrm_mmu::table::{Geometry, MapError, PageTable, WalkOutcome};

use crate::events::{Log, MEvent, TableKind};
use crate::layout::{EL2_LINEAR_BASE, MAX_PFN, PAGE_WORDS};

/// KCore's EL2 address space.
#[derive(Debug, Clone)]
pub struct El2Pt {
    pt: PageTable,
}

impl El2Pt {
    /// Builds the boot-time linear map (all physical memory, block
    /// mappings) and returns the table handle.
    ///
    /// Boot runs before any concurrency, so its writes are not subject to
    /// the write-once monitoring (the condition constrains the *shared*
    /// table after boot).
    pub fn boot(mem: &mut PhysMem, pool: &mut PagePool) -> Self {
        let geo = Geometry::arm_3level();
        let root = pool.alloc(mem).expect("EL2 root");
        let pt = PageTable::new(root, geo);
        // Map [0, MAX_PFN) pages at EL2_LINEAR_BASE using level-1 blocks.
        let block_words = geo.span(1);
        let total_words = MAX_PFN * PAGE_WORDS;
        let mut off = 0;
        while off < total_words {
            pt.map_block(mem, pool, EL2_LINEAR_BASE + off, off, Perms::RWX, 1)
                .expect("boot linear map");
            off += block_words;
        }
        El2Pt { pt }
    }

    /// The linear-map EL2 virtual address of a physical address.
    pub fn linear_va(pa: Addr) -> Addr {
        EL2_LINEAR_BASE + pa
    }

    /// `set_el2_pt`: maps one page at `va`, refusing to overwrite.
    ///
    /// This is the only primitive that changes the EL2 table after boot;
    /// `MapError::AlreadyMapped` is how write-once is enforced.
    pub fn set_el2_pt(
        &self,
        mem: &mut PhysMem,
        pool: &mut PagePool,
        log: &mut Log,
        cpu: usize,
        va: Addr,
        pa: Addr,
    ) -> Result<(), MapError> {
        // Record old values for the monitor *before* applying.
        let before = mem.clone_ranges(&[pool.range(), (self.pt.root, self.pt.root + 1)]);
        let writes = self.pt.map(mem, pool, va, pa, Perms::RW)?;
        for (cell, new) in writes {
            log.push(MEvent::PtWrite {
                cpu,
                table: TableKind::El2,
                cell,
                old: before.read(cell),
                new,
            });
        }
        Ok(())
    }

    /// Translates an EL2 virtual address.
    pub fn translate(&self, mem: &PhysMem, va: Addr) -> Option<Addr> {
        match self.pt.walk(mem, va) {
            WalkOutcome::Mapped { pa, .. } => Some(pa),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// The underlying table (for invariant checks).
    pub fn table(&self) -> &PageTable {
        &self.pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{page_addr, EL2_POOL_PFN, EL2_REMAP_BASE};

    fn setup() -> (PhysMem, PagePool, El2Pt) {
        let mut mem = PhysMem::new();
        let mut pool = PagePool::new(
            &mut mem,
            page_addr(EL2_POOL_PFN.0),
            PAGE_WORDS,
            EL2_POOL_PFN.1 - EL2_POOL_PFN.0,
        );
        let el2 = El2Pt::boot(&mut mem, &mut pool);
        (mem, pool, el2)
    }

    #[test]
    fn linear_map_covers_all_memory() {
        let (mem, _, el2) = setup();
        assert_eq!(el2.translate(&mem, El2Pt::linear_va(0)), Some(0));
        let last = MAX_PFN * PAGE_WORDS - 1;
        assert_eq!(el2.translate(&mem, El2Pt::linear_va(last)), Some(last));
        assert_eq!(el2.translate(&mem, EL2_REMAP_BASE), None);
    }

    #[test]
    fn set_el2_pt_maps_once() {
        let (mut mem, mut pool, el2) = setup();
        let mut log = Log::new();
        let va = EL2_REMAP_BASE;
        el2.set_el2_pt(&mut mem, &mut pool, &mut log, 0, va, page_addr(0x1800))
            .unwrap();
        assert_eq!(el2.translate(&mem, va), Some(page_addr(0x1800)));
        // Second map of the same va fails: write-once.
        assert_eq!(
            el2.set_el2_pt(&mut mem, &mut pool, &mut log, 0, va, page_addr(0x1900)),
            Err(MapError::AlreadyMapped)
        );
        // The monitor sees only empty-to-valid writes.
        for e in &log {
            if let MEvent::PtWrite { old, .. } = e {
                assert_eq!(*old, 0);
            }
        }
    }

    #[test]
    fn remap_region_distinct_from_linear() {
        let (mut mem, mut pool, el2) = setup();
        let mut log = Log::new();
        // A pfn mapped at the remap region remains readable through both
        // the linear map and the alias.
        let pfn = 0x1800;
        mem.write(page_addr(pfn) + 3, 77);
        el2.set_el2_pt(
            &mut mem,
            &mut pool,
            &mut log,
            0,
            EL2_REMAP_BASE,
            page_addr(pfn),
        )
        .unwrap();
        let via_alias = el2.translate(&mem, EL2_REMAP_BASE + 3).unwrap();
        let via_linear = el2
            .translate(&mem, El2Pt::linear_va(page_addr(pfn) + 3))
            .unwrap();
        assert_eq!(mem.read(via_alias), 77);
        assert_eq!(via_alias, via_linear);
    }
}
