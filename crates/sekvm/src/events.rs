//! The machine event log.
//!
//! Every lock operation, page-table write, barrier, TLB invalidation,
//! ownership change, and data access performed by the simulation is
//! recorded here; the [`wdrf`](crate::wdrf) validators and the
//! [`security`](crate::security) checkers replay the log.

use std::fmt;

use vrm_memmodel::ir::{Addr, Val};

/// Who performed an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Principal {
    /// The trusted core at EL2.
    KCore,
    /// The untrusted host Linux.
    KServ,
    /// A guest VM.
    Vm(u32),
    /// A DMA-capable device behind the SMMU.
    Device(u32),
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::KCore => write!(f, "KCore"),
            Principal::KServ => write!(f, "KServ"),
            Principal::Vm(id) => write!(f, "VM{id}"),
            Principal::Device(id) => write!(f, "Dev{id}"),
        }
    }
}

/// The locks KCore uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockId {
    /// Protects `next_vmid` (VM registration).
    VmId,
    /// Protects one VM's metadata and stage-2 table (`acquire_lock_vm`).
    Vm(u32),
    /// Protects KServ's stage-2 table.
    KServS2,
    /// Protects one SMMU device's page table.
    Smmu(u32),
    /// Protects the s2page ownership array.
    S2Page,
    /// Protects KCore's EL2 page table.
    El2,
}

/// Which page-table tree a write targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// KCore's own EL2 table (condition 3 applies).
    El2,
    /// A stage-2 table (conditions 4 and 5 apply). The id is the owning
    /// principal's stage-2: `None` = KServ, `Some(vmid)` = that VM.
    Stage2(Option<u32>),
    /// An SMMU table for a device.
    Smmu(u32),
}

/// One logged machine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MEvent {
    /// A hypercall (or modelled operation) began on a CPU.
    OpStart {
        /// Executing CPU.
        cpu: usize,
        /// Operation name.
        name: &'static str,
    },
    /// The operation completed.
    OpEnd {
        /// Executing CPU.
        cpu: usize,
        /// Operation name.
        name: &'static str,
        /// Whether it succeeded.
        ok: bool,
    },
    /// A lock was acquired.
    LockAcquire {
        /// Executing CPU.
        cpu: usize,
        /// Which lock.
        lock: LockId,
        /// The ticket drawn (fairness evidence).
        ticket: u64,
        /// Spin iterations before the lock was granted.
        spins: u64,
    },
    /// A lock was released.
    LockRelease {
        /// Executing CPU.
        cpu: usize,
        /// Which lock.
        lock: LockId,
    },
    /// A full barrier (`dmb`/`dsb`).
    Barrier {
        /// Executing CPU.
        cpu: usize,
    },
    /// A broadcast TLB invalidation.
    Tlbi {
        /// Executing CPU.
        cpu: usize,
        /// Table whose translations were invalidated.
        table: TableKind,
        /// Restricting virtual page, if any.
        vpn: Option<Addr>,
    },
    /// A page-table cell was written.
    PtWrite {
        /// Executing CPU.
        cpu: usize,
        /// Which tree.
        table: TableKind,
        /// Cell address.
        cell: Addr,
        /// Previous raw entry.
        old: Val,
        /// New raw entry.
        new: Val,
    },
    /// A data read.
    MemRead {
        /// Executing CPU.
        cpu: usize,
        /// Acting principal.
        who: Principal,
        /// Physical address.
        pa: Addr,
        /// `true` if the read is masked by a data oracle (§5.3: KCore
        /// reading VM/KServ memory for image authentication).
        oracle_masked: bool,
    },
    /// A data write.
    MemWrite {
        /// Executing CPU.
        cpu: usize,
        /// Acting principal.
        who: Principal,
        /// Physical address.
        pa: Addr,
    },
    /// Page ownership changed in the s2page array.
    OwnershipChange {
        /// Executing CPU.
        cpu: usize,
        /// The page.
        pfn: u64,
        /// Previous owner.
        from: crate::s2page::Owner,
        /// New owner.
        to: crate::s2page::Owner,
    },
}

impl MEvent {
    /// The CPU that produced the event.
    pub fn cpu(&self) -> usize {
        match self {
            MEvent::OpStart { cpu, .. }
            | MEvent::OpEnd { cpu, .. }
            | MEvent::LockAcquire { cpu, .. }
            | MEvent::LockRelease { cpu, .. }
            | MEvent::Barrier { cpu }
            | MEvent::Tlbi { cpu, .. }
            | MEvent::PtWrite { cpu, .. }
            | MEvent::MemRead { cpu, .. }
            | MEvent::MemWrite { cpu, .. }
            | MEvent::OwnershipChange { cpu, .. } => *cpu,
        }
    }
}

/// A machine execution log.
pub type Log = Vec<MEvent>;
