//! The shared state-space exploration engine.
//!
//! Every verification result in this workspace — litmus verdicts, wDRF
//! condition checks, the RM⊆SC enumeration behind `check_wdrf`, and the
//! SeKVM machine's exhaustive schedules — is a *proof by exhaustive
//! enumeration*: walk every reachable state of a model, dedup on a
//! visited set, collect what terminal states say. This crate provides
//! the one audited implementation of that walk, replacing the five
//! hand-rolled worklist loops the models used to carry.
//!
//! A model implements [`StateSpace`]: it names a hashable `State`, lists
//! the [`StateSpace::initial`] states, and expands any state into its
//! successors through a [`Sink`] (also emitting terminal results —
//! outcomes, violations — through the same sink). The engine owns the
//! frontier, the visited set, limit/deadline enforcement, and
//! statistics.
//!
//! Two interchangeable drivers sit behind [`explore`]:
//!
//! * the **sequential** driver (`jobs <= 1`, the default) — a LIFO
//!   worklist identical in visit order to the loops it replaced, so
//!   every deterministic test is bit-for-bit unchanged;
//! * the **parallel** driver — `std::thread::scope` workers over
//!   per-worker deques with work stealing, deduplicating through a
//!   sharded `Mutex<HashSet>` visited set. Std only: the build
//!   environment is offline, so rayon/crossbeam are not available.
//!
//! Both drivers explore exactly the same state set; only the order (and
//! hence the order of emissions) differs. Callers that fold emissions
//! into sets observe identical results from either driver.
//!
//! # Graceful degradation
//!
//! Running out of budget is a *result*, not an error. When a walk hits
//! [`ExploreConfig::max_states`], a memory budget, a depth bound or a
//! deadline, the drivers return everything they visited so far, mark
//! the run [`Completeness::Truncated`] in its [`ExploreStats`], and
//! attach a [`ResumeState`] (the unexpanded frontier plus digests of
//! the visited set) so a later run can pick up where this one stopped
//! instead of restarting. A truncated walk's emissions are a sound
//! **subset** of the exhaustive set — present emissions are real, but
//! absence proves nothing, which is why every verdict derived from a
//! truncated walk must be [`Verdict::Unknown`], never pass/fail.
//!
//! The only remaining hard error is [`ExploreError::WorkerPanic`]: a
//! panicking parallel worker is contained (its in-flight state and
//! deque are handed to survivors, so the walk stays exhaustive), and
//! the error surfaces only when *every* worker has died.
//!
//! When the `VRM_FAULT_SEED` environment variable is set, the drivers
//! poll the `vrm-faults` injector at their yield points and absorb the
//! injected worker panics, stalls and simulated allocation failures —
//! CI runs the whole test suite under pinned seeds to prove the
//! containment machinery works.
//!
//! [`partition`] covers the second shape of enumeration in the
//! workspace: an embarrassingly parallel sweep over an index space
//! (axiomatic candidate combos, per-execution condition checks) with the
//! same configuration, deadline and statistics plumbing; chunks skipped
//! by a deadline are reported as truncation, not an error.

#![deny(missing_docs)]

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vrm_faults::{FaultKind, Site};

/// Process-global observability counters fed by both drivers; see
/// `docs/TELEMETRY.md` for how they surface in `"metrics"` trace lines.
static OBS_POPPED: vrm_obs::Counter = vrm_obs::Counter::new("explore.states_popped");
static OBS_PUSHED: vrm_obs::Counter = vrm_obs::Counter::new("explore.states_pushed");
static OBS_DEDUP: vrm_obs::Counter = vrm_obs::Counter::new("explore.dedup_hits");
static OBS_STEALS: vrm_obs::Counter = vrm_obs::Counter::new("explore.deque_steals");
static OBS_CHUNKS: vrm_obs::Counter = vrm_obs::Counter::new("explore.partition_chunks");

/// Reduction counters (see `docs/REDUCTION.md`): transitions skipped
/// because they were in a sleep set, transitions cut by a persistent
/// (ample) singleton, and successors replaced by their orbit
/// representative.
static OBS_SLEEP_PRUNED: vrm_obs::Counter = vrm_obs::Counter::new("explore/sleep_pruned");
static OBS_PERSISTENT_CUT: vrm_obs::Counter = vrm_obs::Counter::new("explore/persistent_cut");
static OBS_ORBIT_COLLAPSED: vrm_obs::Counter = vrm_obs::Counter::new("explore/orbit_collapsed");

/// Per-run profiling state, allocated only when `VRM_TRACE` is active:
/// phase histograms fed at the drivers' existing yield points plus the
/// gate that rate-limits periodic `"metrics"` lines. Off-path cost of
/// the whole apparatus is the one `vrm_obs::enabled()` branch that
/// decides not to build it.
struct RunObs {
    expand: vrm_obs::Histogram,
    steal: vrm_obs::Histogram,
    idle: vrm_obs::Histogram,
    gate: vrm_obs::SnapshotGate,
}

impl RunObs {
    fn if_tracing() -> Option<RunObs> {
        vrm_obs::enabled().then(|| RunObs {
            expand: vrm_obs::Histogram::new(),
            steal: vrm_obs::Histogram::new(),
            idle: vrm_obs::Histogram::new(),
            gate: vrm_obs::SnapshotGate::new(),
        })
    }

    /// Emits the run's `"profile"` line (expand always; steal/idle only
    /// where the parallel driver recorded them).
    fn finish(&self, scope: &str) {
        let mut phases: Vec<(&str, &vrm_obs::Histogram)> = vec![("expand", &self.expand)];
        if self.steal.count() > 0 {
            phases.push(("steal", &self.steal));
        }
        if self.idle.count() > 0 {
            phases.push(("idle", &self.idle));
        }
        vrm_obs::emit_profile(scope, &phases);
    }
}

/// How an exploration is bounded and driven.
///
/// One config type serves all four models; each model converts its own
/// public config into this before calling [`explore`]. Exhausting any
/// budget truncates the walk (partial results + [`ResumeState`]) — it
/// never errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Stop expanding (truncating with [`TruncationReason::StateLimit`])
    /// once the visited set holds this many states.
    pub max_states: usize,
    /// Do not expand successors deeper than this many steps from an
    /// initial state; pruned successors are parked in the resume
    /// frontier and the run is marked
    /// [`TruncationReason::DepthLimit`]-truncated.
    pub max_depth: Option<usize>,
    /// Stop expanding (truncating with [`TruncationReason::Deadline`])
    /// when the walk runs longer than this.
    pub deadline: Option<Duration>,
    /// Approximate byte budget for the visited set (see
    /// [`approx_visited_bytes`]); exceeding it truncates with
    /// [`TruncationReason::MemoryBudget`].
    pub max_memory: Option<usize>,
    /// Worker threads. `0` or `1` selects the sequential reference
    /// driver; `n > 1` the work-stealing parallel driver.
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: usize::MAX,
            max_depth: None,
            deadline: None,
            max_memory: None,
            jobs: 1,
        }
    }
}

impl ExploreConfig {
    /// A config bounded only by `max_states`, sequential.
    pub fn with_max_states(max_states: usize) -> Self {
        ExploreConfig {
            max_states,
            ..Default::default()
        }
    }

    /// Sets the worker count, returning the config (builder style).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the deadline, returning the config (builder style).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the approximate visited-set byte budget (builder style).
    pub fn max_memory(mut self, bytes: usize) -> Self {
        self.max_memory = Some(bytes);
        self
    }

    /// The worker count requested through the `VRM_JOBS` environment
    /// variable, defaulting to 1 (sequential) when unset or unparsable.
    ///
    /// Tests and benches use this so `VRM_JOBS=8 cargo test` exercises
    /// the parallel driver everywhere without touching any call site.
    pub fn jobs_from_env() -> usize {
        std::env::var("VRM_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }
}

/// Which budget stopped a truncated walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TruncationReason {
    /// [`ExploreConfig::max_states`] was reached.
    StateLimit,
    /// [`ExploreConfig::max_depth`] pruned at least one successor.
    DepthLimit,
    /// [`ExploreConfig::deadline`] passed.
    Deadline,
    /// [`ExploreConfig::max_memory`] was exceeded (approximate byte
    /// accounting on the visited set).
    MemoryBudget,
    /// The walk was delegated to a worker *process* that died or hung
    /// before answering (supervised out-of-process execution, e.g. a
    /// `vrm-serve` worker). Nothing was explored on this attempt; the
    /// verdict degrades to `Unknown`, never to a wrong answer.
    WorkerLost,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncationReason::StateLimit => write!(f, "state limit"),
            TruncationReason::DepthLimit => write!(f, "depth limit"),
            TruncationReason::Deadline => write!(f, "deadline"),
            TruncationReason::MemoryBudget => write!(f, "memory budget"),
            TruncationReason::WorkerLost => write!(f, "worker lost"),
        }
    }
}

/// Whether a walk covered the whole reachable space.
///
/// Carried in [`ExploreStats`] so completeness travels with every
/// outcome set through every layer of the stack — the theorem checker
/// turns any truncation into [`Verdict::Unknown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Completeness {
    /// Every reachable state (under the driving config) was expanded.
    /// A [`Sink::halt`] is an intentional early stop by the model and
    /// still counts as exhaustive — the searches that halt (promise
    /// certification, witness search) only need one result.
    #[default]
    Exhaustive,
    /// A budget stopped the walk early. The emissions are a sound
    /// *subset* of the exhaustive set: what was found is real, but
    /// absence proves nothing.
    Truncated {
        /// The budget that stopped the walk.
        reason: TruncationReason,
        /// States left unexpanded on the frontier when the walk
        /// stopped (approximate for depth pruning).
        frontier_len: usize,
    },
}

impl Completeness {
    /// `true` iff the walk covered the whole space.
    pub fn is_exhaustive(&self) -> bool {
        matches!(self, Completeness::Exhaustive)
    }

    /// `true` iff a budget stopped the walk early.
    pub fn is_truncated(&self) -> bool {
        !self.is_exhaustive()
    }

    /// Folds another run's completeness into this one. Truncation is
    /// sticky: a pipeline is only exhaustive if every stage was
    /// (frontier lengths add; the first stopping reason is kept).
    pub fn merge(&mut self, other: Completeness) {
        match (*self, other) {
            (Completeness::Exhaustive, t) => *self = t,
            (_, Completeness::Exhaustive) => {}
            (
                Completeness::Truncated {
                    reason,
                    frontier_len: a,
                },
                Completeness::Truncated {
                    frontier_len: b, ..
                },
            ) => {
                *self = Completeness::Truncated {
                    reason,
                    frontier_len: a + b,
                }
            }
        }
    }
}

/// What an exploration did: the observability half of every
/// enumeration, carried alongside each model's outcome set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states inserted into the visited set (fresh states
    /// only when resuming from a checkpoint).
    pub states: usize,
    /// High-water mark of the frontier (pending, unexpanded states).
    pub frontier_peak: usize,
    /// Successors that were already in the visited set.
    pub dedup_hits: usize,
    /// States taken off a worklist and expanded. For a full
    /// (non-halting, non-truncated) walk this equals `states` — each
    /// visited state is expanded exactly once, by either driver — which
    /// is what makes it a deterministic cross-driver invariant.
    pub popped: usize,
    /// Fresh successors queued for expansion (initial states are
    /// seeded, not pushed). Deterministic for a full walk:
    /// `states - initial_count`.
    pub pushed: usize,
    /// Work items taken from *another* worker's deque by the parallel
    /// driver. Always 0 for the sequential driver, and scheduling-
    /// dependent (not deterministic) when parallel.
    pub steals: usize,
    /// Wall-clock time of the walk, in nanoseconds (u64 keeps the
    /// struct `Copy`+`Eq`; see [`ExploreStats::wall`]).
    pub wall_ns: u64,
    /// Worker threads the driving config requested.
    pub jobs: usize,
    /// Whether the walk covered the whole space or was truncated by a
    /// budget.
    pub completeness: Completeness,
}

impl ExploreStats {
    /// Wall-clock time of the walk.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// Folds another run's stats into this one (sums counters, keeps
    /// the larger peak and wall time; truncation is sticky).
    pub fn absorb(&mut self, other: &ExploreStats) {
        self.states += other.states;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.dedup_hits += other.dedup_hits;
        self.popped += other.popped;
        self.pushed += other.pushed;
        self.steals += other.steals;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.jobs = self.jobs.max(other.jobs);
        self.completeness.merge(other.completeness);
    }
}

/// How much of the space a truncated walk covered — the payload of
/// [`Verdict::Unknown`], so an operator always learns what *was*
/// checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Distinct states that were visited before the walk stopped.
    pub states: usize,
    /// Frontier states left unexpanded when the walk stopped.
    pub frontier_len: usize,
    /// The budget that stopped the walk.
    pub reason: TruncationReason,
}

impl Coverage {
    /// Extracts coverage from a truncated run's stats; `None` for an
    /// exhaustive run.
    pub fn from_stats(stats: &ExploreStats) -> Option<Coverage> {
        match stats.completeness {
            Completeness::Exhaustive => None,
            Completeness::Truncated {
                reason,
                frontier_len,
            } => Some(Coverage {
                states: stats.states,
                frontier_len,
                reason,
            }),
        }
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states visited, {} frontier states unexpanded; stopped by {}",
            self.states, self.frontier_len, self.reason
        )
    }
}

/// The three-valued outcome of a bounded verification: the shared
/// verdict currency for `check_wdrf`, litmus conformance and the
/// machine's exhaustive schedules.
///
/// The soundness rule every caller must respect: a verdict computed
/// from a truncated walk is `Unknown` — **never** `Pass` or `Fail` —
/// because a truncated enumeration can both miss counterexamples (so
/// "no counterexample found" proves nothing) and miss the allowed
/// outcomes a counterexample would be compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property held over an exhaustive enumeration.
    Pass,
    /// A genuine counterexample was found (sound even under
    /// truncation, but reported only from exhaustive runs to keep the
    /// rule simple — see [`Verdict::from_parts`]).
    Fail,
    /// The enumeration was truncated; no claim is made either way.
    Unknown {
        /// What was actually checked before the walk stopped.
        coverage: Coverage,
    },
}

impl Verdict {
    /// The one place verdicts are derived from a bounded check:
    /// `holds` is the property as observed, `stats` the enumeration's
    /// statistics. Any truncation forces `Unknown`.
    pub fn from_parts(holds: bool, stats: &ExploreStats) -> Verdict {
        match Coverage::from_stats(stats) {
            Some(coverage) => Verdict::Unknown { coverage },
            None if holds => Verdict::Pass,
            None => Verdict::Fail,
        }
    }

    /// `true` iff this is `Pass`.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// `true` iff this is `Unknown`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// Process exit-code convention shared by the binaries: 0 pass,
    /// 1 fail, 3 unknown (2 is left to the CLI for usage errors).
    pub fn exit_code(&self) -> i32 {
        match self {
            Verdict::Pass => 0,
            Verdict::Fail => 1,
            Verdict::Unknown { .. } => 3,
        }
    }

    /// Worst-wins combination under the soundness ordering
    /// `Fail > Unknown > Pass`: the **one** shared ordering for folding
    /// verdicts from several checks (batch summaries, cache merges,
    /// multi-workload exit codes). In particular a cached `Unknown` can
    /// never be upgraded to `Pass` by merging — only a fresh
    /// [`Verdict::from_parts`] over new exploration evidence may do
    /// that. When both sides are `Unknown`, coverages are summed (the
    /// two walks' evidence is additive) and the left reason kept.
    pub fn merge(self, other: Verdict) -> Verdict {
        match (self, other) {
            (Verdict::Fail, _) | (_, Verdict::Fail) => Verdict::Fail,
            (Verdict::Unknown { coverage: a }, Verdict::Unknown { coverage: b }) => {
                Verdict::Unknown {
                    coverage: Coverage {
                        states: a.states + b.states,
                        frontier_len: a.frontier_len + b.frontier_len,
                        reason: a.reason,
                    },
                }
            }
            (u @ Verdict::Unknown { .. }, Verdict::Pass)
            | (Verdict::Pass, u @ Verdict::Unknown { .. }) => u,
            (Verdict::Pass, Verdict::Pass) => Verdict::Pass,
        }
    }

    /// The exit-code image of [`Verdict::merge`]: folds two process
    /// exit codes under `1 (fail) > 3 (unknown) > 0 (pass)`. Codes
    /// outside the verdict convention (e.g. 2 for usage errors) are
    /// treated as failures and dominate everything but 1.
    pub fn merge_exit_codes(a: i32, b: i32) -> i32 {
        let rank = |c: i32| match c {
            1 => 3,
            3 => 1,
            0 => 0,
            _ => 2,
        };
        if rank(b) > rank(a) {
            b
        } else {
            a
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass => write!(f, "PASS"),
            Verdict::Fail => write!(f, "FAIL"),
            Verdict::Unknown { coverage } => write!(f, "UNKNOWN ({coverage})"),
        }
    }
}

/// Why an exploration failed outright. Budget exhaustion is *not* an
/// error (it truncates — see [`Completeness`]); a walk fails by losing
/// every parallel worker or by being fed an unusable checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// Every one of the run's parallel workers died to a panic in
    /// `expand`; the payload is the worker count. Individual worker
    /// deaths are contained (their work is handed to survivors) and do
    /// not surface.
    WorkerPanic(usize),
    /// A serialized VRMCKPT1 checkpoint failed validation — see
    /// [`CheckpointFault`] for what exactly was wrong. Surfaced by
    /// [`ResumeState::try_from_bytes`]; a service holding checkpoints
    /// as cache artifacts treats this as "restart from scratch", never
    /// as grounds to trust a partial decode.
    CorruptCheckpoint(CheckpointFault),
}

/// What was wrong with a serialized checkpoint (the payload of
/// [`ExploreError::CorruptCheckpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFault {
    /// The bytes do not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The bytes end before a declared field does (or are too short to
    /// even hold the footer).
    Truncated,
    /// Bytes remain after the last declared frontier entry.
    TrailingBytes,
    /// The footer's byte-length field disagrees with the body length.
    LengthMismatch,
    /// The footer's FNV-1a checksum disagrees with the body bytes.
    ChecksumMismatch,
    /// A frontier state's [`CheckpointState::decode`] rejected its
    /// length-prefixed bytes.
    BadState,
}

impl std::fmt::Display for CheckpointFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            CheckpointFault::BadMagic => "bad magic",
            CheckpointFault::Truncated => "truncated",
            CheckpointFault::TrailingBytes => "trailing bytes",
            CheckpointFault::LengthMismatch => "footer length mismatch",
            CheckpointFault::ChecksumMismatch => "footer checksum mismatch",
            CheckpointFault::BadState => "undecodable frontier state",
        };
        f.write_str(what)
    }
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::WorkerPanic(n) => {
                write!(f, "state-space exploration lost all {n} parallel workers")
            }
            ExploreError::CorruptCheckpoint(fault) => {
                write!(f, "corrupt VRMCKPT1 checkpoint: {fault}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Where [`StateSpace::expand`] deposits successors and emissions.
#[derive(Debug)]
pub struct Sink<S, E> {
    succ: Vec<S>,
    emits: Vec<E>,
    halted: bool,
}

impl<S, E> Sink<S, E> {
    fn new() -> Self {
        Sink {
            succ: Vec::new(),
            emits: Vec::new(),
            halted: false,
        }
    }

    /// Adds a successor state to the frontier (deduplicated by the
    /// engine against everything already visited).
    pub fn push(&mut self, state: S) {
        self.succ.push(state);
    }

    /// Emits a result — a terminal outcome, a ghost violation, a
    /// truncation marker. The engine collects emissions from all
    /// workers and hands them back in [`Exploration::emits`].
    pub fn emit(&mut self, emit: E) {
        self.emits.push(emit);
    }

    /// Requests early termination of the walk: searches that only need
    /// one result (promise certification, witness search) emit it and
    /// halt. The sequential driver stops immediately, discarding this
    /// expansion's successors; parallel workers stop cooperatively, so
    /// emissions from expansions already in flight are still returned.
    /// A halt is an intentional stop: the run stays
    /// [`Completeness::Exhaustive`].
    pub fn halt(&mut self) {
        self.halted = true;
    }
}

/// A model exposed to the engine: initial states plus a successor
/// relation.
///
/// `expand` takes `&self`, so any bookkeeping a model used to do
/// through `&mut self` (ghost violations, truncation flags) is emitted
/// through the [`Sink`] instead — that is what makes one implementation
/// serve both the sequential and the parallel driver.
pub trait StateSpace: Sync {
    /// One reachable configuration of the model.
    type State: Clone + Eq + Hash + Send;
    /// What terminal states (or the expansion itself) report.
    type Emit: Send;

    /// The root states of the walk.
    fn initial(&self) -> Vec<Self::State>;

    /// Pushes every successor of `state` (and any emissions) into the
    /// sink. A state with no successors is terminal.
    fn expand(&self, state: &Self::State, sink: &mut Sink<Self::State, Self::Emit>);
}

/// The read/write token sets one process's next (or future) transitions
/// may touch, used by the reduced drivers to decide independence.
///
/// Tokens are opaque `u64`s chosen by the space — memory addresses,
/// page-frame numbers, or synthetic tokens such as "appends to the
/// global store order". Two footprints *conflict* when one's writes
/// intersect the other's reads or writes (in either direction); two
/// transitions whose footprints do not conflict commute and neither
/// can enable or disable the other, which is exactly the independence
/// the ample/sleep machinery relies on.
///
/// `reads_top`/`writes_top` mean "every token": a conservative space
/// (or a transition whose accesses cannot be named statically) reports
/// top and conflicts with everything that touches anything. The empty
/// footprint conflicts with nothing — not even top — which is what
/// makes purely thread-local steps (register moves, `pc` advances past
/// the end of code) freely commutable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Tokens this transition may read.
    pub reads: Vec<u64>,
    /// Tokens this transition may write.
    pub writes: Vec<u64>,
    /// Reads every token (ignore `reads`).
    pub reads_top: bool,
    /// Writes every token (ignore `writes`).
    pub writes_top: bool,
}

/// `true` when the token sets `(a, a_top)` and `(b, b_top)` intersect;
/// an empty, non-top side intersects nothing, including top.
fn tokens_overlap(a: &[u64], a_top: bool, b: &[u64], b_top: bool) -> bool {
    if (a.is_empty() && !a_top) || (b.is_empty() && !b_top) {
        return false;
    }
    if a_top || b_top {
        return true;
    }
    a.iter().any(|t| b.contains(t))
}

impl Footprint {
    /// The footprint that touches nothing and conflicts with nothing.
    pub fn empty() -> Footprint {
        Footprint::default()
    }

    /// The footprint that reads and writes everything: conflicts with
    /// any footprint that touches anything.
    pub fn top() -> Footprint {
        Footprint {
            reads_top: true,
            writes_top: true,
            ..Footprint::default()
        }
    }

    /// Adds a read token.
    pub fn read(&mut self, t: u64) {
        if !self.reads_top && !self.reads.contains(&t) {
            self.reads.push(t);
        }
    }

    /// Adds a write token.
    pub fn write(&mut self, t: u64) {
        if !self.writes_top && !self.writes.contains(&t) {
            self.writes.push(t);
        }
    }

    /// Unions `other` into `self`.
    pub fn merge(&mut self, other: &Footprint) {
        self.reads_top |= other.reads_top;
        self.writes_top |= other.writes_top;
        if self.reads_top {
            self.reads.clear();
        } else {
            for &t in &other.reads {
                self.read(t);
            }
        }
        if self.writes_top {
            self.writes.clear();
        } else {
            for &t in &other.writes {
                self.write(t);
            }
        }
    }

    /// `true` when the footprint touches nothing at all.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && !self.reads_top && !self.writes_top
    }

    /// Symmetric conflict test: `self`'s writes against `other`'s reads
    /// and writes, plus `other`'s writes against `self`'s reads.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        tokens_overlap(&self.writes, self.writes_top, &other.reads, other.reads_top)
            || tokens_overlap(
                &self.writes,
                self.writes_top,
                &other.writes,
                other.writes_top,
            )
            || tokens_overlap(&other.writes, other.writes_top, &self.reads, self.reads_top)
    }
}

/// A [`StateSpace`] that additionally names its concurrent processes
/// and their dependencies, unlocking the reduced drivers behind
/// [`explore_reduced`].
///
/// The contract that makes reduction sound (see `docs/REDUCTION.md`):
///
/// * `expand(s)` is exactly "emit if [`Deps::enabled`] is empty, else
///   the union of [`Deps::expand_proc`] over every enabled process" —
///   the reduced drivers interleave per-process expansions and must
///   reconstruct the full expansion from them;
/// * [`Deps::now`] over-approximates every token any *currently
///   possible* transition of the process may touch (including
///   transitions whose enabledness depends on global state — if
///   another process's write could enable or disable a move, that
///   location must be in `now`);
/// * [`Deps::future`] over-approximates `now` over every state the
///   process can ever reach from here;
/// * emissions happen only at states with no enabled processes (plus
///   process-insensitive error/truncation markers) — the reduced
///   drivers preserve the set of terminal states reached, not the set
///   of paths;
/// * [`Deps::canon`] maps a state to a strictly-preferred member of
///   its symmetry orbit (or `None` when the state is already the
///   representative), and [`Deps::orbit`] lists the *other* members of
///   the orbit, so terminal emissions can be re-rendered for every
///   symmetric variant the walk collapsed.
///
/// Every hook except `enabled`/`expand_proc` has a conservative
/// default (top footprints, no symmetry) that degrades the reduced
/// walk to the exhaustive one.
pub trait Deps: StateSpace {
    /// Process ids that can take a step from `state`; empty exactly
    /// when the state is terminal/emitting. Ids must be `< 64` for the
    /// sleep-set driver to track them (larger ids are safe but get no
    /// sleep pruning).
    fn enabled(&self, state: &Self::State) -> Vec<usize>;

    /// Pushes the successors (and emissions) contributed by process
    /// `p` alone — one slice of what [`StateSpace::expand`] would do.
    fn expand_proc(&self, state: &Self::State, p: usize, sink: &mut Sink<Self::State, Self::Emit>);

    /// Footprint of every transition process `p` might take *now*.
    fn now(&self, _state: &Self::State, _p: usize) -> Footprint {
        Footprint::top()
    }

    /// Footprint of everything process `p` might ever do from here.
    fn future(&self, _state: &Self::State, _p: usize) -> Footprint {
        Footprint::top()
    }

    /// The orbit representative of `state` under the space's symmetry
    /// group, or `None` when `state` already is the representative.
    fn canon(&self, _state: &Self::State) -> Option<Self::State> {
        None
    }

    /// The other members of `state`'s symmetry orbit (excluding
    /// `state` itself); empty when the state's orbit is trivial.
    fn orbit(&self, _state: &Self::State) -> Vec<Self::State> {
        Vec::new()
    }
}

/// Picks a process whose singleton `{p}` is a sound ample set at
/// `state`: `now(p)` must be independent of `future(q)` for every
/// other enabled `q` — then no other process can ever perform a step
/// that conflicts with (enables, disables, or fails to commute with)
/// `p`'s next move, so exploring only `p` first loses no terminal
/// state. Returns `None` when no singleton qualifies (full expansion).
fn ample_singleton<SP: Deps>(space: &SP, state: &SP::State, enabled: &[usize]) -> Option<usize> {
    if enabled.len() <= 1 {
        return None;
    }
    'cand: for &p in enabled {
        let np = space.now(state, p);
        for &q in enabled {
            if q != p && np.conflicts(&space.future(state, q)) {
                continue 'cand;
            }
        }
        return Some(p);
    }
    None
}

/// Expands a state through the space's *whole-state* [`StateSpace::expand`],
/// closing emissions over the state's symmetry orbit: the walk only
/// kept the orbit representative, so the emissions of every collapsed
/// variant are re-rendered here. Used for terminals (no enabled
/// process) and for cross-process dead ends — states where every
/// per-process expansion yielded nothing, but the whole-state expand
/// may still emit (e.g. a global-stall marker). Successors accidentally
/// pushed by an orbit image are discarded — such states have none by
/// contract.
fn expand_terminal<SP: Deps>(space: &SP, state: &SP::State, sink: &mut Sink<SP::State, SP::Emit>) {
    space.expand(state, sink);
    let mark = sink.succ.len();
    for image in space.orbit(state) {
        space.expand(&image, sink);
    }
    sink.succ.truncate(mark);
}

/// The adapter that makes a [`Deps`] space look like a plain
/// [`StateSpace`] whose *graph is already reduced*: expansion picks an
/// ample singleton where one exists, canonicalizes every successor to
/// its orbit representative, and re-renders terminal emissions for the
/// whole orbit. Because `State`/`Emit` are unchanged, the parallel
/// driver (and its checkpoint/resume machinery) runs it as-is.
struct Reduced<'a, SP: Deps> {
    inner: &'a SP,
}

impl<SP: Deps> Reduced<'_, SP> {
    /// Canonicalizes the successors pushed after `mark`, counting each
    /// replacement.
    fn canon_tail(&self, sink: &mut Sink<SP::State, SP::Emit>, mark: usize) {
        for next in &mut sink.succ[mark..] {
            if let Some(c) = self.inner.canon(next) {
                OBS_ORBIT_COLLAPSED.add(1);
                *next = c;
            }
        }
    }
}

impl<SP: Deps> StateSpace for Reduced<'_, SP> {
    type State = SP::State;
    type Emit = SP::Emit;

    fn initial(&self) -> Vec<Self::State> {
        self.inner
            .initial()
            .into_iter()
            .map(|s| match self.inner.canon(&s) {
                Some(c) => {
                    OBS_ORBIT_COLLAPSED.add(1);
                    c
                }
                None => s,
            })
            .collect()
    }

    fn expand(&self, state: &Self::State, sink: &mut Sink<Self::State, Self::Emit>) {
        let enabled = self.inner.enabled(state);
        if enabled.is_empty() {
            expand_terminal(self.inner, state, sink);
            return;
        }
        let mark_succ = sink.succ.len();
        let mark_emit = sink.emits.len();
        match ample_singleton(self.inner, state, &enabled) {
            Some(p) => {
                self.inner.expand_proc(state, p, sink);
                let fresh = &sink.succ[mark_succ..];
                let yielded = !fresh.is_empty() || sink.emits.len() > mark_emit;
                let self_loop_only = !fresh.is_empty() && fresh.iter().all(|n| n == state);
                if !yielded || self_loop_only {
                    // `p` is stuck (or spins in place): falling back to
                    // the full expansion keeps the other processes'
                    // moves reachable.
                    sink.succ.truncate(mark_succ);
                    sink.emits.truncate(mark_emit);
                    for &q in &enabled {
                        self.inner.expand_proc(state, q, sink);
                    }
                } else {
                    OBS_PERSISTENT_CUT.add((enabled.len() - 1) as u64);
                }
            }
            None => {
                for &q in &enabled {
                    self.inner.expand_proc(state, q, sink);
                }
            }
        }
        if sink.succ.len() == mark_succ && sink.emits.len() == mark_emit {
            // Cross-process dead end: no per-process expansion yielded
            // anything, but the whole-state expand may still emit a
            // marker (e.g. a global stall). Delegate to it, orbit-closed.
            expand_terminal(self.inner, state, sink);
        }
        self.canon_tail(sink, mark_succ);
    }
}

/// A 128-bit digest of a state from two independently salted
/// `DefaultHasher` passes. `DefaultHasher::new()` uses fixed keys, so
/// digests are stable across processes of the same build — which is
/// what lets a checkpoint carry the visited set as digests instead of
/// whole states.
pub fn digest128<S: Hash + ?Sized>(s: &S) -> u128 {
    let mut a = DefaultHasher::new();
    0x9e37_79b9_7f4a_7c15u64.hash(&mut a);
    s.hash(&mut a);
    let mut b = DefaultHasher::new();
    0xc2b2_ae3d_27d4_eb4fu64.hash(&mut b);
    s.hash(&mut b);
    ((a.finish() as u128) << 64) | b.finish() as u128
}

/// Everything needed to resume a truncated walk: the unexpanded
/// frontier (with depths) plus 128-bit digests of every state already
/// visited, so the resumed run re-deduplicates against the past
/// without holding the past's states in memory.
///
/// Produced by the drivers on truncation ([`Exploration::resume`]),
/// consumed by [`explore_from`]. Emissions are **not** carried — the
/// caller unions each run's emissions itself (set-folding callers get
/// this for free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeState<S> {
    /// Unexpanded `(state, depth)` pairs left on the frontier.
    pub frontier: Vec<(S, usize)>,
    /// [`digest128`] of every state visited so far (including the
    /// frontier states themselves).
    pub visited_digests: HashSet<u128>,
}

/// Magic + version prefix of the checkpoint byte format.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"VRMCKPT1";

/// States that can round-trip through the hand-rolled checkpoint byte
/// format. Containers length-prefix each state, so `encode` does not
/// need to be self-delimiting; `decode` receives exactly the bytes
/// `encode` produced.
pub trait CheckpointState: Sized {
    /// Appends this state's byte representation to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Rebuilds a state from exactly the bytes `encode` wrote, or
    /// `None` if they are malformed.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl CheckpointState for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if b.len() < n {
        return None;
    }
    let (head, tail) = b.split_at(n);
    *b = tail;
    Some(head)
}

fn take_u32(b: &mut &[u8]) -> Option<u32> {
    Some(u32::from_le_bytes(take(b, 4)?.try_into().ok()?))
}

fn take_u64(b: &mut &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(take(b, 8)?.try_into().ok()?))
}

fn take_u128(b: &mut &[u8]) -> Option<u128> {
    Some(u128::from_le_bytes(take(b, 16)?.try_into().ok()?))
}

/// Byte length of the checkpoint integrity footer appended by
/// [`ResumeState::to_bytes`]: an 8-byte LE body length followed by an
/// 8-byte LE FNV-1a checksum of the body (magic included).
pub const CHECKPOINT_FOOTER_LEN: usize = 16;

/// FNV-1a 64-bit over `bytes` — the checkpoint footer checksum. Not
/// cryptographic; it guards against truncation and bit rot of a
/// checkpoint held as a service-level artifact, not against an
/// adversary.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The checkpoint footer's FNV-1a 64 checksum, exposed so sibling
/// binary framings (the schedule-resume container in `vrm-sekvm`, the
/// `vrm-serve` write-ahead log) share one integrity convention instead
/// of reimplementing it.
pub fn checksum64(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

impl<S> ResumeState<S> {
    /// Serializes the checkpoint to the hand-rolled binary format:
    /// magic, digest count + digests (16-byte LE), frontier count, per
    /// frontier entry a depth, a length prefix and the state's
    /// [`CheckpointState::encode`] bytes — then an integrity footer
    /// ([`CHECKPOINT_FOOTER_LEN`] bytes: body length + FNV-1a checksum)
    /// so a stored checkpoint that was truncated or corrupted is
    /// rejected wholesale by [`ResumeState::try_from_bytes`] instead of
    /// mis-decoding.
    pub fn to_bytes(&self) -> Vec<u8>
    where
        S: CheckpointState,
    {
        let mut out = Vec::new();
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&(self.visited_digests.len() as u64).to_le_bytes());
        for d in &self.visited_digests {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&(self.frontier.len() as u64).to_le_bytes());
        for (s, depth) in &self.frontier {
            out.extend_from_slice(&(*depth as u64).to_le_bytes());
            let mut enc = Vec::new();
            s.encode(&mut enc);
            out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            out.extend_from_slice(&enc);
        }
        let body_len = out.len() as u64;
        let sum = fnv1a64(&out);
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses a checkpoint produced by [`ResumeState::to_bytes`],
    /// reporting *why* rejection happened. The footer is verified
    /// first (length, then checksum), so any truncation or corruption
    /// anywhere in the body is caught before field-by-field decoding
    /// begins — decoding never panics and never returns a partially
    /// reconstructed checkpoint.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, ExploreError>
    where
        S: CheckpointState,
    {
        let fail = |f: CheckpointFault| Err(ExploreError::CorruptCheckpoint(f));
        if bytes.len() < CHECKPOINT_MAGIC.len() + CHECKPOINT_FOOTER_LEN {
            return fail(CheckpointFault::Truncated);
        }
        let (body, footer) = bytes.split_at(bytes.len() - CHECKPOINT_FOOTER_LEN);
        let declared_len = u64::from_le_bytes(footer[..8].try_into().unwrap());
        let declared_sum = u64::from_le_bytes(footer[8..].try_into().unwrap());
        if declared_len != body.len() as u64 {
            return fail(CheckpointFault::LengthMismatch);
        }
        if declared_sum != fnv1a64(body) {
            return fail(CheckpointFault::ChecksumMismatch);
        }
        let mut b = body;
        match take(&mut b, CHECKPOINT_MAGIC.len()) {
            Some(magic) if magic == CHECKPOINT_MAGIC => {}
            Some(_) => return fail(CheckpointFault::BadMagic),
            None => return fail(CheckpointFault::Truncated),
        }
        let Some(n) = take_u64(&mut b) else {
            return fail(CheckpointFault::Truncated);
        };
        let mut visited_digests = HashSet::with_capacity((n as usize).min(1 << 20));
        for _ in 0..n {
            let Some(d) = take_u128(&mut b) else {
                return fail(CheckpointFault::Truncated);
            };
            visited_digests.insert(d);
        }
        let Some(m) = take_u64(&mut b) else {
            return fail(CheckpointFault::Truncated);
        };
        let mut frontier = Vec::with_capacity((m as usize).min(1 << 20));
        for _ in 0..m {
            let (Some(depth), Some(len)) = (take_u64(&mut b), take_u32(&mut b)) else {
                return fail(CheckpointFault::Truncated);
            };
            let Some(raw) = take(&mut b, len as usize) else {
                return fail(CheckpointFault::Truncated);
            };
            let Some(state) = S::decode(raw) else {
                return fail(CheckpointFault::BadState);
            };
            frontier.push((state, depth as usize));
        }
        if !b.is_empty() {
            return fail(CheckpointFault::TrailingBytes);
        }
        Ok(ResumeState {
            frontier,
            visited_digests,
        })
    }

    /// [`ResumeState::try_from_bytes`] with the fault discarded; kept
    /// for callers that only care whether the checkpoint is usable.
    pub fn from_bytes(b: &[u8]) -> Option<Self>
    where
        S: CheckpointState,
    {
        Self::try_from_bytes(b).ok()
    }
}

/// A type-erased, owned checkpoint: a [`ResumeState`] boxed behind
/// `Any` so layers that cannot name a space's (often private) state
/// type — a verdict cache, a job queue — can still hold and hand back
/// the checkpoint for [`explore_from`]. The producing layer parks it
/// with the concrete type and is the only one that can resume it; a
/// mismatched `resume::<T>()` returns `None` rather than corrupting
/// the walk.
pub struct Checkpoint {
    state: Box<dyn std::any::Any + Send>,
    frontier_len: usize,
    visited: usize,
}

impl Checkpoint {
    /// Erases `rs` into an opaque, `Send` checkpoint handle.
    pub fn park<S: Send + 'static>(rs: ResumeState<S>) -> Checkpoint {
        Checkpoint {
            frontier_len: rs.frontier.len(),
            visited: rs.visited_digests.len(),
            state: Box::new(rs),
        }
    }

    /// Recovers the concrete [`ResumeState`] parked by
    /// [`Checkpoint::park`]; `None` iff `S` is not the parked type.
    pub fn resume<S: Send + 'static>(self) -> Option<ResumeState<S>> {
        self.state.downcast::<ResumeState<S>>().ok().map(|b| *b)
    }

    /// Borrows the parked [`ResumeState`] without consuming the
    /// handle; `None` iff `S` is not the parked type. This is what a
    /// serializer uses: the producing layer can encode a parked
    /// frontier (e.g. to a durable store) while the checkpoint stays
    /// resumable in memory.
    pub fn peek<S: Send + 'static>(&self) -> Option<&ResumeState<S>> {
        self.state.downcast_ref::<ResumeState<S>>()
    }

    /// Number of unexpanded frontier entries parked in this checkpoint.
    pub fn frontier_len(&self) -> usize {
        self.frontier_len
    }

    /// Number of visited-state digests parked in this checkpoint.
    pub fn visited(&self) -> usize {
        self.visited
    }
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("frontier_len", &self.frontier_len)
            .field("visited", &self.visited)
            .finish_non_exhaustive()
    }
}

/// What [`explore`] returns: everything the space emitted, plus stats,
/// plus — iff the walk was truncated — a [`ResumeState`] checkpoint.
#[derive(Debug)]
pub struct Exploration<S, E> {
    /// All emissions, in visit order for the sequential driver and in
    /// nondeterministic order for the parallel one.
    pub emits: Vec<E>,
    /// Counters, timing and completeness for the walk.
    pub stats: ExploreStats,
    /// Present exactly when `stats.completeness` is truncated: feed it
    /// back through [`explore_from`] (usually with larger budgets) to
    /// continue instead of restarting.
    pub resume: Option<ResumeState<S>>,
}

/// Result alias for the driver entry points.
pub type ExploreResult<SP> =
    Result<Exploration<<SP as StateSpace>::State, <SP as StateSpace>::Emit>, ExploreError>;

/// Explores the whole state space of `space` under `cfg`, dispatching
/// to the sequential or parallel driver on [`ExploreConfig::jobs`].
pub fn explore<SP: StateSpace>(space: &SP, cfg: &ExploreConfig) -> ExploreResult<SP> {
    explore_from(space, cfg, None)
}

/// Like [`explore`], but optionally resuming from a prior truncated
/// run's checkpoint: the frontier is re-seeded from it and successors
/// are deduplicated against the prior run's visited digests as well as
/// this run's visited set. Budgets apply to *this* run's fresh states.
pub fn explore_from<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
    resume: Option<ResumeState<SP::State>>,
) -> ExploreResult<SP> {
    if cfg.jobs > 1 {
        parallel_from(space, cfg, resume)
    } else {
        sequential_from(space, cfg, resume)
    }
}

/// Explores the state space of a [`Deps`] space with dynamic
/// partial-order + symmetry reduction (see `docs/REDUCTION.md`):
/// ample-singleton persistent sets and orbit canonicalization in both
/// drivers, plus sleep-set pruning in the sequential one. The reduced
/// walk reaches the same terminal states (and therefore emits the same
/// outcome *set*) as [`explore`] on the same space.
pub fn explore_reduced<SP: Deps>(space: &SP, cfg: &ExploreConfig) -> ExploreResult<SP> {
    explore_reduced_from(space, cfg, None)
}

/// Like [`explore_reduced`], optionally resuming a checkpoint from a
/// prior *reduced* run of the same space. A checkpoint produced by a
/// reduced walk must be resumed reduced (and vice versa): the frontier
/// states are orbit representatives of a reduced graph, which the
/// unreduced walk does not generate.
pub fn explore_reduced_from<SP: Deps>(
    space: &SP,
    cfg: &ExploreConfig,
    resume: Option<ResumeState<SP::State>>,
) -> ExploreResult<SP> {
    if cfg.jobs > 1 {
        parallel_from(&Reduced { inner: space }, cfg, resume)
    } else {
        sequential_reduced_from(space, cfg, resume, false)
    }
}

#[doc(hidden)]
/// Campaign-mutant hook (`dpor-sleep-set-never-blocks`): the reduced
/// sequential walk with the sleep-set check disabled while the run
/// still claims to be reduced. Exists so the mutation campaign can
/// prove the deterministic `popped` bench anchors catch a silently
/// disabled reduction; not part of the public API.
pub fn explore_reduced_sleepless<SP: Deps>(space: &SP, cfg: &ExploreConfig) -> ExploreResult<SP> {
    if cfg.jobs > 1 {
        parallel_from(&Reduced { inner: space }, cfg, None)
    } else {
        sequential_reduced_from(space, cfg, None, true)
    }
}

/// Estimated per-entry bookkeeping bytes of a hash-set entry (hash,
/// bucket metadata, padding) on top of the state's inline size.
pub const VISITED_ENTRY_OVERHEAD: usize = 48;

/// Approximate heap footprint of a visited set holding `states` states
/// of type `S`: inline size plus [`VISITED_ENTRY_OVERHEAD`] per entry.
/// Heap indirections *inside* states (Vecs, maps) are not counted —
/// the memory budget is a rail, not an allocator.
pub fn approx_visited_bytes<S>(states: usize) -> usize {
    states.saturating_mul(std::mem::size_of::<S>() + VISITED_ENTRY_OVERHEAD)
}

/// `Duration → u64` nanoseconds, saturating instead of silently
/// wrapping (a >584-year duration is "forever" for our purposes). The
/// one conversion both drivers share.
pub fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Locks a mutex, tolerating poison: containment must keep working
/// after a worker died mid-critical-section, and every structure the
/// engine guards (deques, slots, sets) stays valid across a panic in
/// model code (`expand` runs outside these locks' critical sections,
/// except the in-flight slot — whose `Some` payload is exactly what
/// the handler wants).
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// How long an injected [`FaultKind::Delay`] stalls a driver.
const FAULT_DELAY: Duration = Duration::from_micros(100);

fn budget_truncation<S>(states: usize, cfg: &ExploreConfig) -> Option<TruncationReason> {
    if states >= cfg.max_states {
        return Some(TruncationReason::StateLimit);
    }
    if let Some(budget) = cfg.max_memory {
        if approx_visited_bytes::<S>(states) >= budget {
            return Some(TruncationReason::MemoryBudget);
        }
    }
    None
}

/// Records a truncation reason, first-stopping-reason-wins: a
/// non-aborting depth pruning is overwritten by a stopping reason, but
/// never the other way around.
fn record_truncation(slot: &mut Option<TruncationReason>, r: TruncationReason) {
    match *slot {
        None => *slot = Some(r),
        Some(TruncationReason::DepthLimit) if r != TruncationReason::DepthLimit => *slot = Some(r),
        _ => {}
    }
}

/// Aim for roughly this much wall time between deadline clock reads.
const POLL_TARGET_NS: u64 = 1_000_000;

/// Adaptive deadline polling, shared by both drivers.
///
/// The old scheme read the clock once per 64 expansions, which
/// overshoots a deadline by 64× the cost of a *slow* expansion. This
/// poller is time-based instead: it measures how much wall time the
/// last batch of polls actually took and re-plans the stride so clock
/// reads land about [`POLL_TARGET_NS`] apart (denser as the deadline
/// approaches, via the `remaining / 2` cap). Stride growth is capped
/// at 2× per read, so a fast→slow workload transition overshoots by at
/// most twice the previously *measured* batch time — not by a fixed
/// count of arbitrarily slow expansions.
struct DeadlinePoller {
    start: Instant,
    deadline_ns: u64,
    stride: u32,
    left: u32,
    last_ns: u64,
}

impl DeadlinePoller {
    fn new(start: Instant, deadline: Duration) -> Self {
        DeadlinePoller {
            start,
            deadline_ns: saturating_ns(deadline),
            stride: 1,
            left: 0,
            last_ns: 0,
        }
    }

    /// `true` once the deadline has passed; call once per unit of work.
    fn expired(&mut self) -> bool {
        if self.left > 0 {
            self.left -= 1;
            return false;
        }
        let now = saturating_ns(self.start.elapsed());
        if now > self.deadline_ns {
            return true;
        }
        let batch = now.saturating_sub(self.last_ns);
        let per_poll = (batch / u64::from(self.stride)).max(1);
        let remaining = self.deadline_ns - now;
        let target = POLL_TARGET_NS.min(remaining / 2).max(1);
        let ideal = (target / per_poll).clamp(1, 4096) as u32;
        self.stride = ideal.min(self.stride.saturating_mul(2)).max(1);
        self.last_ns = now;
        self.left = self.stride - 1;
        false
    }
}

/// The sequential reference driver: a LIFO worklist with a single
/// visited set, field-for-field the loop the individual models used to
/// hand-roll. Kept as the default so deterministic tests (witness
/// traces, visit-order-sensitive diagnostics) are bit-for-bit
/// unchanged. Never fails: budget exhaustion returns partial results.
fn sequential_from<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
    resume: Option<ResumeState<SP::State>>,
) -> ExploreResult<SP> {
    let start = Instant::now();
    let _span = vrm_obs::span!("explore.sequential");
    let obs = RunObs::if_tracing();
    let mut stats = ExploreStats {
        jobs: 1,
        ..Default::default()
    };
    let (prior, seeded) = match resume {
        Some(r) => (r.visited_digests, Some(r.frontier)),
        None => (HashSet::new(), None),
    };
    let mut visited: HashSet<SP::State> = HashSet::new();
    let mut stack: Vec<(SP::State, usize)> = Vec::new();
    let mut emits: Vec<SP::Emit> = Vec::new();
    match seeded {
        Some(frontier) => stack = frontier,
        None => {
            for s in space.initial() {
                if visited.insert(s.clone()) {
                    stack.push((s, 0));
                }
            }
        }
    }
    stats.frontier_peak = stack.len();
    // Successors pruned by the depth bound: visited (so they dedup)
    // but never expanded; parked for the resume frontier.
    let mut deep: Vec<(SP::State, usize)> = Vec::new();
    let mut trunc: Option<TruncationReason> = None;
    let mut poller = cfg.deadline.map(|d| DeadlinePoller::new(start, d));
    let mut sink = Sink::new();
    loop {
        if let Some(r) = budget_truncation::<SP::State>(visited.len(), cfg) {
            record_truncation(&mut trunc, r);
            break;
        }
        if poller.as_mut().is_some_and(|p| p.expired()) {
            record_truncation(&mut trunc, TruncationReason::Deadline);
            break;
        }
        if vrm_faults::poll(Site::Sequential) == Some(FaultKind::Delay) {
            std::thread::sleep(FAULT_DELAY);
        }
        if let Some(o) = &obs {
            if o.gate.due() {
                vrm_obs::emit_metrics(
                    "explore.sequential",
                    &[("frontier_len", stack.len() as u64)],
                );
            }
        }
        let Some((state, depth)) = stack.pop() else {
            break;
        };
        stats.popped += 1;
        match &obs {
            Some(o) => {
                let t = Instant::now();
                space.expand(&state, &mut sink);
                o.expand.record(t.elapsed());
            }
            None => space.expand(&state, &mut sink),
        }
        emits.append(&mut sink.emits);
        if sink.halted {
            sink.succ.clear();
            break;
        }
        for next in sink.succ.drain(..) {
            if !prior.is_empty() && prior.contains(&digest128(&next)) {
                stats.dedup_hits += 1;
                continue;
            }
            if !visited.insert(next.clone()) {
                stats.dedup_hits += 1;
                continue;
            }
            if cfg.max_depth.is_some_and(|md| depth + 1 > md) {
                deep.push((next, depth + 1));
                record_truncation(&mut trunc, TruncationReason::DepthLimit);
                continue;
            }
            stack.push((next, depth + 1));
            stats.pushed += 1;
            stats.frontier_peak = stats.frontier_peak.max(stack.len());
        }
    }
    stats.states = visited.len();
    stats.wall_ns = saturating_ns(start.elapsed());
    OBS_POPPED.add(stats.popped as u64);
    OBS_PUSHED.add(stats.pushed as u64);
    OBS_DEDUP.add(stats.dedup_hits as u64);
    if let Some(o) = &obs {
        o.finish("explore.sequential");
    }
    let resume_out = match trunc {
        None => None,
        Some(reason) => {
            let mut frontier = stack;
            frontier.append(&mut deep);
            let mut digests = prior;
            digests.extend(visited.iter().map(digest128));
            stats.completeness = Completeness::Truncated {
                reason,
                frontier_len: frontier.len(),
            };
            Some(ResumeState {
                frontier,
                visited_digests: digests,
            })
        }
    };
    Ok(Exploration {
        emits,
        stats,
        resume: resume_out,
    })
}

/// Iterates the process ids set in a sleep mask.
fn mask_bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..64).filter(move |i| mask & (1u64 << i) != 0)
}

/// The sleep-mask bit of process `p`; processes beyond the mask width
/// get no bit (they are never slept, which is merely conservative).
fn sleep_bit(p: usize) -> u64 {
    if p < 64 {
        1u64 << p
    } else {
        0
    }
}

/// The reduced sequential driver: the LIFO worklist of
/// [`sequential_from`] extended with ample-singleton persistent sets,
/// orbit canonicalization, and sleep sets (Godefroid-style, adapted to
/// a stateful search).
///
/// Each frontier entry carries a *sleep mask*: the set of processes
/// whose every move from this state is already covered by an earlier
/// sibling branch, so expanding them here would only re-derive
/// interleavings the walk has seen. The visited map remembers the mask
/// each state was expanded under; re-reaching a state with a mask that
/// sleeps *fewer* processes re-expands it under the intersection
/// (masks only shrink, so this terminates), which is what keeps
/// pruning sound when the same state is reached along paths with
/// different coverage obligations.
///
/// On truncation the checkpoint carries the remnant frontier plus the
/// digests of **only the frontier states themselves** — not the full
/// visited set: a sleep-pruned state's coverage argument leans on
/// sibling subtrees that may themselves have been cut by the budget,
/// so the resumed run must be free to re-walk interior states. The
/// frontier states are safe to deduplicate against because the resumed
/// run seeds them all-awake and expands them fully. (The parallel
/// reduced driver explores a *fixed* reduced graph and keeps the
/// normal full-visited-set resume.)
fn sequential_reduced_from<SP: Deps>(
    space: &SP,
    cfg: &ExploreConfig,
    resume: Option<ResumeState<SP::State>>,
    sleep_disabled: bool,
) -> ExploreResult<SP> {
    let start = Instant::now();
    let _span = vrm_obs::span!("explore.sequential_reduced");
    let obs = RunObs::if_tracing();
    let mut stats = ExploreStats {
        jobs: 1,
        ..Default::default()
    };
    let (prior, seeded) = match resume {
        Some(r) => (r.visited_digests, Some(r.frontier)),
        None => (HashSet::new(), None),
    };
    // State → the sleep mask it was (last) expanded under.
    let mut visited: HashMap<SP::State, u64> = HashMap::new();
    let mut stack: Vec<(SP::State, usize, u64)> = Vec::new();
    let mut emits: Vec<SP::Emit> = Vec::new();
    match seeded {
        Some(frontier) => {
            // Resumed frontier states get the all-awake mask: their
            // sibling coverage may be gone, so re-explore everything.
            stack = frontier.into_iter().map(|(s, d)| (s, d, 0u64)).collect();
        }
        None => {
            for s in space.initial() {
                let s = match space.canon(&s) {
                    Some(c) => {
                        OBS_ORBIT_COLLAPSED.add(1);
                        c
                    }
                    None => s,
                };
                if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(s.clone()) {
                    e.insert(0);
                    stack.push((s, 0, 0));
                }
            }
        }
    }
    stats.frontier_peak = stack.len();
    let mut deep: Vec<(SP::State, usize)> = Vec::new();
    let mut trunc: Option<TruncationReason> = None;
    let mut poller = cfg.deadline.map(|d| DeadlinePoller::new(start, d));
    let mut sink = Sink::new();
    'walk: loop {
        if let Some(r) = budget_truncation::<SP::State>(visited.len(), cfg) {
            record_truncation(&mut trunc, r);
            break;
        }
        if poller.as_mut().is_some_and(|p| p.expired()) {
            record_truncation(&mut trunc, TruncationReason::Deadline);
            break;
        }
        if vrm_faults::poll(Site::Sequential) == Some(FaultKind::Delay) {
            std::thread::sleep(FAULT_DELAY);
        }
        if let Some(o) = &obs {
            if o.gate.due() {
                vrm_obs::emit_metrics(
                    "explore.sequential_reduced",
                    &[("frontier_len", stack.len() as u64)],
                );
            }
        }
        let Some((state, depth, sleep)) = stack.pop() else {
            break;
        };
        stats.popped += 1;
        let t_expand = obs.as_ref().map(|_| Instant::now());
        let enabled = space.enabled(&state);
        if enabled.is_empty() {
            expand_terminal(space, &state, &mut sink);
            emits.append(&mut sink.emits);
            sink.succ.clear();
            if let (Some(o), Some(t)) = (&obs, t_expand) {
                o.expand.record(t.elapsed());
            }
            if sink.halted {
                break;
            }
            continue;
        }
        // Sleep masks only work for process ids < 64; wider spaces run
        // ample+canon only.
        let maskable = !sleep_disabled && enabled.iter().all(|&p| p < 64);
        let sleep = if maskable { sleep } else { 0 };
        let mut base: Vec<usize> = match ample_singleton(space, &state, &enabled) {
            Some(p) => vec![p],
            None => enabled.clone(),
        };
        // An ample singleton that yields nothing (or only spins in
        // place) is stuck; the stuckness is detected before its (empty)
        // expansion is committed, so restarting the pass with the full
        // enabled set is clean.
        let mut pass_yielded = false;
        let mut pass_asleep;
        'pass: loop {
            let ample_cut = base.len() < enabled.len();
            let asleep = base.iter().filter(|&&p| sleep & sleep_bit(p) != 0).count();
            pass_asleep = asleep;
            let explore_list: Vec<usize> = base
                .iter()
                .copied()
                .filter(|&p| sleep & sleep_bit(p) == 0)
                .collect();
            if asleep > 0 {
                OBS_SLEEP_PRUNED.add(asleep as u64);
            }
            let mut sleep_acc = sleep;
            for &p in &explore_list {
                let now_p = space.now(&state, p);
                let mut child_sleep = 0u64;
                if maskable {
                    for q in mask_bits(sleep_acc) {
                        if !space.now(&state, q).conflicts(&now_p) {
                            child_sleep |= 1u64 << q;
                        }
                    }
                }
                let mark_succ = sink.succ.len();
                let mark_emit = sink.emits.len();
                space.expand_proc(&state, p, &mut sink);
                let fresh = &sink.succ[mark_succ..];
                let yielded = !fresh.is_empty() || sink.emits.len() > mark_emit;
                let self_loop_only = !fresh.is_empty() && fresh.iter().all(|n| *n == state);
                if ample_cut && (!yielded || self_loop_only) {
                    sink.succ.truncate(mark_succ);
                    sink.emits.truncate(mark_emit);
                    base = enabled.clone();
                    pass_yielded = false;
                    continue 'pass;
                }
                pass_yielded |= yielded;
                for next in sink.succ.drain(mark_succ..) {
                    let (next, next_sleep) = match space.canon(&next) {
                        Some(c) => {
                            // Canonicalization permutes process ids, so
                            // the child's sleep obligations no longer
                            // line up: wake everything.
                            OBS_ORBIT_COLLAPSED.add(1);
                            (c, 0u64)
                        }
                        None => (next, child_sleep),
                    };
                    if !prior.is_empty() && prior.contains(&digest128(&next)) {
                        stats.dedup_hits += 1;
                        continue;
                    }
                    let merged = match visited.entry(next.clone()) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let stored = *e.get();
                            if stored & !next_sleep == 0 {
                                // Already expanded under an
                                // equal-or-more-awake mask: covered.
                                stats.dedup_hits += 1;
                                continue;
                            }
                            let merged = stored & next_sleep;
                            e.insert(merged);
                            merged
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(next_sleep);
                            next_sleep
                        }
                    };
                    if cfg.max_depth.is_some_and(|md| depth + 1 > md) {
                        deep.push((next, depth + 1));
                        record_truncation(&mut trunc, TruncationReason::DepthLimit);
                        continue;
                    }
                    stack.push((next, depth + 1, merged));
                    stats.pushed += 1;
                    stats.frontier_peak = stats.frontier_peak.max(stack.len());
                }
                emits.append(&mut sink.emits);
                if sink.halted {
                    break 'walk;
                }
                sleep_acc |= sleep_bit(p);
            }
            if ample_cut {
                OBS_PERSISTENT_CUT.add((enabled.len() - 1) as u64);
            }
            break;
        }
        if !pass_yielded && pass_asleep == 0 {
            // Cross-process dead end (nothing slept, nothing yielded):
            // the whole-state expand may still emit a marker (e.g. a
            // global stall). Delegate to it, orbit-closed; successors
            // are none by contract.
            expand_terminal(space, &state, &mut sink);
            emits.append(&mut sink.emits);
            sink.succ.clear();
            if sink.halted {
                break 'walk;
            }
        }
        if let (Some(o), Some(t)) = (&obs, t_expand) {
            o.expand.record(t.elapsed());
        }
    }
    emits.append(&mut sink.emits);
    stats.states = visited.len();
    stats.wall_ns = saturating_ns(start.elapsed());
    OBS_POPPED.add(stats.popped as u64);
    OBS_PUSHED.add(stats.pushed as u64);
    OBS_DEDUP.add(stats.dedup_hits as u64);
    if let Some(o) = &obs {
        o.finish("explore.sequential_reduced");
    }
    let resume_out = match trunc {
        None => None,
        Some(reason) => {
            let mut frontier: Vec<(SP::State, usize)> =
                stack.into_iter().map(|(s, d, _)| (s, d)).collect();
            frontier.append(&mut deep);
            stats.completeness = Completeness::Truncated {
                reason,
                frontier_len: frontier.len(),
            };
            // Only the frontier's own digests — interior states must
            // stay re-walkable (see the driver doc comment), but the
            // frontier states are re-expanded all-awake on resume, so
            // advertising them keeps digest-membership checks on
            // serialized checkpoints satisfiable.
            let visited_digests = frontier.iter().map(|(s, _)| digest128(s)).collect();
            Some(ResumeState {
                frontier,
                visited_digests,
            })
        }
    };
    Ok(Exploration {
        emits,
        stats,
        resume: resume_out,
    })
}

/// The visited set of the parallel driver: `HashSet` shards behind
/// mutexes, indexed by the state's hash, so concurrent inserts on
/// different shards never contend.
struct ShardedVisited<S> {
    shards: Vec<Mutex<HashSet<S>>>,
    hasher: BuildHasherDefault<DefaultHasher>,
    len: AtomicUsize,
}

impl<S: Eq + Hash> ShardedVisited<S> {
    fn new(shards: usize) -> Self {
        ShardedVisited {
            shards: (0..shards).map(|_| Mutex::new(HashSet::new())).collect(),
            hasher: BuildHasherDefault::default(),
            len: AtomicUsize::new(0),
        }
    }

    /// Inserts, returning `true` when the state is fresh.
    fn insert(&self, state: S) -> bool {
        let shard = (self.hasher.hash_one(&state) as usize) % self.shards.len();
        let fresh = lock_tolerant(&self.shards[shard]).insert(state);
        if fresh {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }
}

/// Atomically reserves one worker death, refusing if this worker is
/// the last one alive — the gate the fault injector goes through, so
/// injected faults are liveness hazards only and a faulted run still
/// completes its walk.
fn reserve_death(alive: &AtomicUsize) -> bool {
    let mut cur = alive.load(Ordering::SeqCst);
    loop {
        if cur <= 1 {
            return false;
        }
        match alive.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(observed) => cur = observed,
        }
    }
}

/// Moves the contents of `queues[me]` into the other queues
/// round-robin, so a dead or retiring worker's frontier keeps flowing
/// even while every survivor is busy at the back of its own deque.
fn drain_to_survivors<S>(queues: &[Mutex<VecDeque<(S, usize)>>], me: usize) {
    let n = queues.len();
    if n <= 1 {
        return;
    }
    let drained: Vec<(S, usize)> = lock_tolerant(&queues[me]).drain(..).collect();
    for (i, item) in drained.into_iter().enumerate() {
        let target = (me + 1 + (i % (n - 1))) % n;
        lock_tolerant(&queues[target]).push_back(item);
    }
}

/// The work-stealing parallel driver. Each worker owns a deque: it
/// pushes and pops at the back (depth-first, cache-friendly) and
/// steals from the front of a victim's deque when starved. A shared
/// `pending` count of not-yet-expanded states provides termination:
/// when it reaches zero, no state exists anywhere and no expansion is
/// in flight, so the frontier can never grow again.
///
/// Every worker runs inside `catch_unwind`. A panic in `expand` kills
/// only that worker: the containment handler requeues the in-flight
/// state (parked in a per-worker slot for exactly this purpose) and
/// drains the dead worker's deque to survivors, so the walk still
/// visits every state. [`ExploreError::WorkerPanic`] surfaces only
/// when the last worker dies.
fn parallel_from<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
    resume: Option<ResumeState<SP::State>>,
) -> ExploreResult<SP> {
    let start = Instant::now();
    let jobs = cfg.jobs.max(2);
    let _span = vrm_obs::span!("explore.parallel", jobs = jobs);
    let obs = RunObs::if_tracing();
    let obs = obs.as_ref();
    let (prior_set, seeded) = match resume {
        Some(r) => (r.visited_digests, Some(r.frontier)),
        None => (HashSet::new(), None),
    };
    let prior = &prior_set;
    let visited: ShardedVisited<SP::State> = ShardedVisited::new((jobs * 8).next_power_of_two());
    type WorkQueue<S> = Mutex<VecDeque<(S, usize)>>;
    let queues: Vec<WorkQueue<SP::State>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    // Per-worker in-flight slot: the state currently being expanded,
    // parked so the containment handler can recover it after a panic.
    type InflightSlot<S> = Mutex<Option<(S, usize)>>;
    let inflight: Vec<InflightSlot<SP::State>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let deep: Mutex<Vec<(SP::State, usize)>> = Mutex::new(Vec::new());
    let pending = AtomicUsize::new(0);
    let frontier_peak = AtomicUsize::new(0);
    let dedup_hits = AtomicUsize::new(0);
    let popped = AtomicUsize::new(0);
    let pushed = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let alive = AtomicUsize::new(jobs);
    let all_dead = AtomicBool::new(false);
    let trunc: Mutex<Option<TruncationReason>> = Mutex::new(None);

    // Seed the workers' deques round-robin: from the checkpoint's
    // frontier when resuming, from the initial states otherwise.
    {
        let mut count = 0usize;
        match seeded {
            Some(frontier) => {
                for (i, item) in frontier.into_iter().enumerate() {
                    lock_tolerant(&queues[i % jobs]).push_back(item);
                    count += 1;
                }
            }
            None => {
                for (i, s) in space.initial().into_iter().enumerate() {
                    if visited.insert(s.clone()) {
                        lock_tolerant(&queues[i % jobs]).push_back((s, 0));
                        count += 1;
                    }
                }
            }
        }
        pending.store(count, Ordering::SeqCst);
        frontier_peak.store(count, Ordering::Relaxed);
    }

    let truncate = |r: TruncationReason| {
        record_truncation(&mut lock_tolerant(&trunc), r);
        if r != TruncationReason::DepthLimit {
            abort.store(true, Ordering::SeqCst);
        }
    };

    let mut all_emits: Vec<SP::Emit> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for me in 0..jobs {
            let queues = &queues;
            let inflight = &inflight;
            let deep = &deep;
            let visited = &visited;
            let pending = &pending;
            let frontier_peak = &frontier_peak;
            let dedup_hits = &dedup_hits;
            let popped = &popped;
            let pushed = &pushed;
            let steals = &steals;
            let abort = &abort;
            let alive = &alive;
            let all_dead = &all_dead;
            let truncate = &truncate;
            handles.push(scope.spawn(move || {
                let mut emits: Vec<SP::Emit> = Vec::new();
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut sink = Sink::new();
                    let mut spins = 0u32;
                    let mut poller = cfg.deadline.map(|d| DeadlinePoller::new(start, d));
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(r) =
                            budget_truncation::<SP::State>(visited.len.load(Ordering::Relaxed), cfg)
                        {
                            truncate(r);
                            break;
                        }
                        if poller.as_mut().is_some_and(|p| p.expired()) {
                            truncate(TruncationReason::Deadline);
                            break;
                        }
                        if let Some(o) = obs {
                            if o.gate.due() {
                                vrm_obs::emit_metrics(
                                    "explore.parallel",
                                    &[("pending", pending.load(Ordering::Relaxed) as u64)],
                                );
                            }
                        }
                        match vrm_faults::poll(Site::ParallelWorker) {
                            Some(FaultKind::Delay) => std::thread::sleep(FAULT_DELAY),
                            Some(FaultKind::WorkerPanic) if reserve_death(alive) => {
                                drain_to_survivors(queues, me);
                                vrm_faults::inject_panic();
                            }
                            Some(FaultKind::AllocFail) if reserve_death(alive) => {
                                // Simulated allocation failure: retire
                                // gracefully, handing work to survivors.
                                drain_to_survivors(queues, me);
                                break;
                            }
                            _ => {}
                        }
                        // Own queue first (LIFO), then steal (FIFO).
                        let job = {
                            let own = lock_tolerant(&queues[me]).pop_back();
                            match own {
                                Some(j) => Some(j),
                                None => {
                                    let t = obs.map(|_| Instant::now());
                                    let stolen = (1..jobs).find_map(|d| {
                                        lock_tolerant(&queues[(me + d) % jobs]).pop_front()
                                    });
                                    if stolen.is_some() {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        if let (Some(o), Some(t)) = (obs, t) {
                                            o.steal.record(t.elapsed());
                                        }
                                    }
                                    stolen
                                }
                            }
                        };
                        let Some((state, depth)) = job else {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            spins += 1;
                            let t = obs.map(|_| Instant::now());
                            if spins > 64 {
                                std::thread::sleep(Duration::from_micros(50));
                            } else {
                                std::thread::yield_now();
                            }
                            if let (Some(o), Some(t)) = (obs, t) {
                                o.idle.record(t.elapsed());
                            }
                            continue;
                        };
                        spins = 0;
                        popped.fetch_add(1, Ordering::Relaxed);
                        // Park the state in the in-flight slot for the
                        // whole expansion: if `expand` panics, the
                        // containment handler finds it here and
                        // requeues it, so no state is ever lost to a
                        // worker death (the walk stays exhaustive).
                        let mut slot = lock_tolerant(&inflight[me]);
                        *slot = Some((state, depth));
                        {
                            let parked = slot.as_ref().expect("in-flight state just parked");
                            match obs {
                                Some(o) => {
                                    let t = Instant::now();
                                    space.expand(&parked.0, &mut sink);
                                    o.expand.record(t.elapsed());
                                }
                                None => space.expand(&parked.0, &mut sink),
                            }
                        }
                        emits.append(&mut sink.emits);
                        if sink.halted {
                            sink.halted = false;
                            sink.succ.clear();
                            *slot = None;
                            abort.store(true, Ordering::SeqCst);
                            break;
                        }
                        let mut fresh: Vec<(SP::State, usize)> = Vec::new();
                        for next in sink.succ.drain(..) {
                            if !prior.is_empty() && prior.contains(&digest128(&next)) {
                                dedup_hits.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            if !visited.insert(next.clone()) {
                                dedup_hits.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            if cfg.max_depth.is_some_and(|md| depth + 1 > md) {
                                lock_tolerant(deep).push((next, depth + 1));
                                truncate(TruncationReason::DepthLimit);
                                continue;
                            }
                            fresh.push((next, depth + 1));
                        }
                        // Account for the successors BEFORE they become
                        // stealable: every queued state is represented in
                        // `pending`, so a thief finishing one early can
                        // never drive the counter to zero (or below) while
                        // work still exists. The expanded state's own count
                        // is released only after its successors are in —
                        // and only after the in-flight slot is cleared, so
                        // a state is never both requeued and released.
                        if !fresh.is_empty() {
                            pushed.fetch_add(fresh.len(), Ordering::Relaxed);
                            let now =
                                pending.fetch_add(fresh.len(), Ordering::SeqCst) + fresh.len();
                            frontier_peak.fetch_max(now, Ordering::Relaxed);
                            let mut own = lock_tolerant(&queues[me]);
                            for item in fresh {
                                own.push_back(item);
                            }
                        }
                        *slot = None;
                        drop(slot);
                        pending.fetch_sub(1, Ordering::SeqCst);
                    }
                }));
                if let Err(payload) = caught {
                    // Containment: requeue the in-flight state (its
                    // `pending` count is still held, so termination
                    // accounting stays exact) and hand the dead
                    // worker's deque to survivors.
                    if let Some(item) = lock_tolerant(&inflight[me]).take() {
                        lock_tolerant(&queues[(me + 1) % jobs]).push_back(item);
                    }
                    drain_to_survivors(queues, me);
                    // Injected panics settled their liveness accounting
                    // through `reserve_death` before unwinding (and can
                    // never take the last worker); only genuine `expand`
                    // panics are accounted here.
                    if payload
                        .downcast_ref::<vrm_faults::InjectedPanic>()
                        .is_none()
                        && alive.fetch_sub(1, Ordering::SeqCst) == 1
                    {
                        all_dead.store(true, Ordering::SeqCst);
                        abort.store(true, Ordering::SeqCst);
                    }
                }
                emits
            }));
        }
        for h in handles {
            if let Ok(mut e) = h.join() {
                all_emits.append(&mut e);
            }
        }
    });

    if all_dead.load(Ordering::SeqCst) {
        return Err(ExploreError::WorkerPanic(jobs));
    }
    let mut stats = ExploreStats {
        states: visited.len.load(Ordering::Relaxed),
        frontier_peak: frontier_peak.load(Ordering::Relaxed),
        dedup_hits: dedup_hits.load(Ordering::Relaxed),
        popped: popped.load(Ordering::Relaxed),
        pushed: pushed.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
        wall_ns: saturating_ns(start.elapsed()),
        jobs,
        completeness: Completeness::Exhaustive,
    };
    OBS_POPPED.add(stats.popped as u64);
    OBS_PUSHED.add(stats.pushed as u64);
    OBS_DEDUP.add(stats.dedup_hits as u64);
    OBS_STEALS.add(stats.steals as u64);
    if let Some(o) = obs {
        o.finish("explore.parallel");
    }
    let trunc_reason = lock_tolerant(&trunc).take();
    let resume_out = match trunc_reason {
        None => None,
        Some(reason) => {
            let mut frontier: Vec<(SP::State, usize)> = Vec::new();
            for q in &queues {
                frontier.extend(lock_tolerant(q).drain(..));
            }
            frontier.append(&mut lock_tolerant(&deep));
            for slot in &inflight {
                if let Some(item) = lock_tolerant(slot).take() {
                    frontier.push(item);
                }
            }
            let mut digests = prior_set;
            for shard in &visited.shards {
                for s in lock_tolerant(shard).iter() {
                    digests.insert(digest128(s));
                }
            }
            stats.completeness = Completeness::Truncated {
                reason,
                frontier_len: frontier.len(),
            };
            Some(ResumeState {
                frontier,
                visited_digests: digests,
            })
        }
    };
    Ok(Exploration {
        emits: all_emits,
        stats,
        resume: resume_out,
    })
}

/// Reruns a budget-truncated or worker-panicked exploration with
/// escalating budgets until it completes, `max_retries` is spent, or
/// the truncation is one escalation cannot fix (a deadline).
///
/// * `StateLimit` / `MemoryBudget` truncation: double the budget and
///   **resume from the checkpoint** — prior work is reused, each
///   attempt only explores fresh states.
/// * `WorkerPanic` (all parallel workers died): fall back to the
///   sequential driver, which cannot lose workers.
///
/// Emissions from every attempt are concatenated (set-folding callers
/// dedup for free; after a worker-panic restart some emissions may
/// repeat). The returned stats sum the attempts' counters; the
/// completeness is the *final* attempt's — earlier truncations were
/// recovered, not inherited.
pub fn retry_with_escalation<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
    max_retries: usize,
) -> ExploreResult<SP> {
    let mut cfg = *cfg;
    let mut acc_emits: Vec<SP::Emit> = Vec::new();
    let mut acc_stats = ExploreStats::default();
    let mut resume: Option<ResumeState<SP::State>> = None;
    let mut attempts = 0usize;
    loop {
        match explore_from(space, &cfg, resume.take()) {
            Err(ExploreError::WorkerPanic(_)) if attempts < max_retries => {
                attempts += 1;
                cfg.jobs = 1;
            }
            Err(e) => return Err(e),
            Ok(mut r) => {
                acc_emits.append(&mut r.emits);
                acc_stats.absorb(&r.stats);
                let escalatable = matches!(
                    r.stats.completeness,
                    Completeness::Truncated {
                        reason: TruncationReason::StateLimit | TruncationReason::MemoryBudget,
                        ..
                    }
                );
                if escalatable && attempts < max_retries && r.resume.is_some() {
                    attempts += 1;
                    cfg.max_states = cfg.max_states.saturating_mul(2);
                    cfg.max_memory = cfg.max_memory.map(|m| m.saturating_mul(2));
                    resume = r.resume;
                    continue;
                }
                let completeness = r.stats.completeness;
                acc_stats.completeness = completeness;
                return Ok(Exploration {
                    emits: acc_emits,
                    stats: acc_stats,
                    resume: r.resume,
                });
            }
        }
    }
}

/// [`retry_with_escalation`] over the **reduced** drivers: identical
/// escalation policy (double truncated budgets and resume, fall back
/// to one job after a worker panic), but each attempt walks the
/// sleep-set/ample/orbit-reduced graph via [`explore_reduced_from`].
/// Checkpoints stay within the reduced walk end to end, so the
/// soundness story of a resumed reduced run (re-awakened frontier,
/// re-walkable interior) is preserved across escalations.
pub fn retry_with_escalation_reduced<SP: Deps>(
    space: &SP,
    cfg: &ExploreConfig,
    max_retries: usize,
) -> ExploreResult<SP> {
    let mut cfg = *cfg;
    let mut acc_emits: Vec<SP::Emit> = Vec::new();
    let mut acc_stats = ExploreStats::default();
    let mut resume: Option<ResumeState<SP::State>> = None;
    let mut attempts = 0usize;
    loop {
        match explore_reduced_from(space, &cfg, resume.take()) {
            Err(ExploreError::WorkerPanic(_)) if attempts < max_retries => {
                attempts += 1;
                cfg.jobs = 1;
            }
            Err(e) => return Err(e),
            Ok(mut r) => {
                acc_emits.append(&mut r.emits);
                acc_stats.absorb(&r.stats);
                let escalatable = matches!(
                    r.stats.completeness,
                    Completeness::Truncated {
                        reason: TruncationReason::StateLimit | TruncationReason::MemoryBudget,
                        ..
                    }
                );
                if escalatable && attempts < max_retries && r.resume.is_some() {
                    attempts += 1;
                    cfg.max_states = cfg.max_states.saturating_mul(2);
                    cfg.max_memory = cfg.max_memory.map(|m| m.saturating_mul(2));
                    resume = r.resume;
                    continue;
                }
                let completeness = r.stats.completeness;
                acc_stats.completeness = completeness;
                return Ok(Exploration {
                    emits: acc_emits,
                    stats: acc_stats,
                    resume: r.resume,
                });
            }
        }
    }
}

/// An embarrassingly parallel sweep over the index space `0..total`.
///
/// The range is cut into chunks; `work` folds one chunk into a partial
/// result; the partials come back in chunk order, so a deterministic
/// merge gives identical results for any `jobs`. With `jobs <= 1` the
/// whole range is one chunk processed inline — exactly the loop the
/// caller would have written. Used for enumerations that are a product
/// space rather than a frontier: axiomatic execution candidates,
/// per-execution condition sweeps.
///
/// Chunks not yet started when the deadline passes are skipped and
/// reported as truncation in the returned stats (`frontier_len` counts
/// the skipped chunks) — never an error; `work` itself is infallible,
/// so callers carry their own error/truncation state inside `T`.
pub fn partition<T, F>(total: u64, cfg: &ExploreConfig, work: F) -> (Vec<T>, ExploreStats)
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> T + Sync,
{
    let start = Instant::now();
    let _span = vrm_obs::span!("explore.partition", total = total, jobs = cfg.jobs);
    if cfg.jobs <= 1 || total < 2 {
        let expired = cfg.deadline.is_some_and(|d| start.elapsed() > d);
        let (out, completeness) = if expired {
            (
                Vec::new(),
                Completeness::Truncated {
                    reason: TruncationReason::Deadline,
                    frontier_len: 1,
                },
            )
        } else {
            OBS_CHUNKS.add(1);
            (vec![work(0..total)], Completeness::Exhaustive)
        };
        let stats = ExploreStats {
            states: if expired { 0 } else { total as usize },
            frontier_peak: 1,
            wall_ns: saturating_ns(start.elapsed()),
            jobs: 1,
            completeness,
            ..Default::default()
        };
        return (out, stats);
    }
    let jobs = cfg.jobs;
    // Over-split so fast workers can take more chunks (dynamic load
    // balancing without a scheduler).
    let chunks = (jobs as u64 * 8).min(total);
    let chunk_len = total.div_ceil(chunks);
    let next = AtomicU64::new(0);
    let deadline = cfg.deadline;
    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let next = &next;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks {
                    break;
                }
                if let Some(d) = deadline {
                    if start.elapsed() > d {
                        // Leave the slot empty: a skipped chunk is
                        // truncation, counted by the collector below.
                        continue;
                    }
                }
                if vrm_faults::poll(Site::Sequential) == Some(FaultKind::Delay) {
                    std::thread::sleep(FAULT_DELAY);
                }
                // Both ends clamped: `div_ceil` rounding can leave the
                // trailing chunks entirely past `total`, so `lo` may
                // exceed it (the range is then empty).
                let lo = (i * chunk_len).min(total);
                let hi = ((i + 1) * chunk_len).min(total);
                let r = work(lo..hi);
                *lock_tolerant(&slots[i as usize]) = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(chunks as usize);
    let mut skipped = 0usize;
    let mut covered = 0u64;
    for (i, slot) in slots.into_iter().enumerate() {
        let i = i as u64;
        match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(t) => {
                out.push(t);
                covered += ((i + 1) * chunk_len).min(total) - (i * chunk_len).min(total);
            }
            None => skipped += 1,
        }
    }
    let completeness = if skipped == 0 {
        Completeness::Exhaustive
    } else {
        Completeness::Truncated {
            reason: TruncationReason::Deadline,
            frontier_len: skipped,
        }
    };
    OBS_CHUNKS.add(chunks - skipped as u64);
    let stats = ExploreStats {
        states: covered as usize,
        frontier_peak: chunks as usize,
        wall_ns: saturating_ns(start.elapsed()),
        jobs,
        completeness,
        ..Default::default()
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The n-bit hypercube: states are bitmasks, each expansion sets one
    /// more bit, terminal state is all-ones. 2^n states, heavily
    /// redundant paths — a good dedup workout.
    struct Bits {
        n: u32,
    }

    impl StateSpace for Bits {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if *state == (1u64 << self.n) - 1 {
                sink.emit(*state);
                return;
            }
            for b in 0..self.n {
                if state & (1 << b) == 0 {
                    sink.push(state | (1 << b));
                }
            }
        }
    }

    /// A linear chain 0 → 1 → … → len, emitting each state.
    struct Chain {
        len: u64,
    }

    impl StateSpace for Chain {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            sink.emit(*state);
            if *state < self.len {
                sink.push(state + 1);
            }
        }
    }

    /// A chain that halts the walk at `stop`.
    struct HaltingChain {
        len: u64,
        stop: u64,
    }

    impl StateSpace for HaltingChain {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            sink.emit(*state);
            if *state == self.stop {
                sink.halt();
                return;
            }
            if *state < self.len {
                sink.push(state + 1);
            }
        }
    }

    /// A chain whose every expansion burns real wall time — the
    /// deadline-granularity regression harness.
    struct SlowChain {
        len: u64,
        step: Duration,
    }

    impl StateSpace for SlowChain {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            std::thread::sleep(self.step);
            sink.emit(*state);
            if *state < self.len {
                sink.push(state + 1);
            }
        }
    }

    /// A hypercube with one poisoned state whose FIRST expansion
    /// panics; later expansions succeed. Exercises containment +
    /// requeue: the walk must still be exhaustive.
    struct PoisonOnce {
        n: u32,
        poison: u64,
        fired: AtomicBool,
    }

    impl StateSpace for PoisonOnce {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if *state == self.poison && !self.fired.swap(true, Ordering::SeqCst) {
                panic!("poisoned state {state:#x}");
            }
            if *state == (1u64 << self.n) - 1 {
                sink.emit(*state);
                return;
            }
            for b in 0..self.n {
                if state & (1 << b) == 0 {
                    sink.push(state | (1 << b));
                }
            }
        }
    }

    /// A space whose poisoned state ALWAYS panics: it serially kills
    /// every worker that touches it, so the run must fail with
    /// `WorkerPanic`.
    struct PoisonAlways;

    impl StateSpace for PoisonAlways {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if *state == 3 {
                panic!("always-poisoned state");
            }
            if *state < 8 {
                sink.push(state + 1);
            }
        }
    }

    fn emit_set(e: &Exploration<u64, u64>) -> BTreeSet<u64> {
        e.emits.iter().copied().collect()
    }

    fn exhaustive_emits<SP: StateSpace<State = u64, Emit = u64>>(space: &SP) -> BTreeSet<u64> {
        let r = explore(space, &ExploreConfig::default()).unwrap();
        assert!(r.stats.completeness.is_exhaustive());
        emit_set(&r)
    }

    #[test]
    fn hypercube_is_fully_explored_sequentially() {
        let space = Bits { n: 10 };
        let r = explore(&space, &ExploreConfig::default()).unwrap();
        assert_eq!(r.stats.states, 1 << 10);
        assert_eq!(r.emits, vec![(1 << 10) - 1]);
        assert!(r.stats.completeness.is_exhaustive());
        assert!(r.resume.is_none());
        assert!(r.stats.dedup_hits > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let space = Bits { n: 12 };
        let seq = explore(&space, &ExploreConfig::default()).unwrap();
        for jobs in [2, 4, 8] {
            let par = explore(&space, &ExploreConfig::default().jobs(jobs)).unwrap();
            assert_eq!(par.stats.states, seq.stats.states, "jobs={jobs}");
            assert_eq!(emit_set(&par), emit_set(&seq), "jobs={jobs}");
            assert!(par.stats.completeness.is_exhaustive());
            assert!(par.resume.is_none());
        }
    }

    #[test]
    fn work_counters_are_deterministic_across_drivers() {
        // For a full walk: every visited state is popped and expanded
        // exactly once, every non-initial visited state was pushed
        // exactly once, and dedup hits are total successors minus fresh
        // ones — all independent of scheduling, hence identical for the
        // sequential and any parallel run. Steals and timings are the
        // scheduling-dependent remainder and are deliberately excluded.
        if std::env::var("VRM_FAULT_SEED").is_ok() {
            // An injected worker death requeues (and later re-pops) its
            // in-flight state, so pop counts legitimately drift under
            // fault injection.
            return;
        }
        let space = Bits { n: 10 };
        let seq = explore(&space, &ExploreConfig::default()).unwrap();
        assert_eq!(seq.stats.popped, 1 << 10);
        assert_eq!(seq.stats.pushed, (1 << 10) - 1);
        assert_eq!(seq.stats.steals, 0);
        for jobs in [2, 4] {
            let par = explore(&space, &ExploreConfig::default().jobs(jobs)).unwrap();
            assert_eq!(par.stats.popped, seq.stats.popped, "jobs={jobs}");
            assert_eq!(par.stats.pushed, seq.stats.pushed, "jobs={jobs}");
            assert_eq!(par.stats.dedup_hits, seq.stats.dedup_hits, "jobs={jobs}");
        }
    }

    #[test]
    fn state_budget_truncates_with_partial_results_sequential() {
        let space = Chain { len: 1_000 };
        let r = explore(&space, &ExploreConfig::with_max_states(10)).unwrap();
        assert_eq!(
            r.stats.completeness,
            Completeness::Truncated {
                reason: TruncationReason::StateLimit,
                frontier_len: 1,
            }
        );
        assert!(
            r.stats.states >= 10 && r.stats.states < 20,
            "{}",
            r.stats.states
        );
        assert!(!r.emits.is_empty(), "partial results must be returned");
        let resume = r.resume.expect("truncated run must carry a checkpoint");
        assert_eq!(resume.frontier.len(), 1);
        assert_eq!(resume.visited_digests.len(), r.stats.states);
    }

    #[test]
    fn state_budget_truncates_under_contention() {
        let space = Bits { n: 12 };
        let cfg = ExploreConfig {
            max_states: 100,
            jobs: 4,
            ..Default::default()
        };
        let r = explore(&space, &cfg).unwrap();
        assert!(
            matches!(
                r.stats.completeness,
                Completeness::Truncated {
                    reason: TruncationReason::StateLimit,
                    ..
                }
            ),
            "{:?}",
            r.stats.completeness
        );
        // Workers race past the limit by at most ~one expansion each.
        assert!(r.stats.states >= 100 && r.stats.states < 100 + 4 * 16);
        assert!(r.resume.is_some());
    }

    #[test]
    fn memory_budget_truncates() {
        let space = Chain { len: 100_000 };
        let budget = approx_visited_bytes::<u64>(64);
        let r = explore(&space, &ExploreConfig::default().max_memory(budget)).unwrap();
        match r.stats.completeness {
            Completeness::Truncated {
                reason: TruncationReason::MemoryBudget,
                ..
            } => {}
            other => panic!("expected memory-budget truncation, got {other:?}"),
        }
        assert!(r.stats.states >= 64 && r.stats.states < 128);
    }

    #[test]
    fn truncated_emits_are_subset_of_exhaustive() {
        let space = Bits { n: 8 };
        let full: BTreeSet<u64> = {
            // Emit every state instead of just the terminal one.
            struct AllBits {
                n: u32,
            }
            impl StateSpace for AllBits {
                type State = u64;
                type Emit = u64;
                fn initial(&self) -> Vec<u64> {
                    vec![0]
                }
                fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
                    sink.emit(*state);
                    for b in 0..self.n {
                        if state & (1 << b) == 0 {
                            sink.push(state | (1 << b));
                        }
                    }
                }
            }
            let all = AllBits { n: 8 };
            let full = exhaustive_emits(&all);
            for max in [1usize, 5, 17, 60, 200] {
                for jobs in [1usize, 4] {
                    let cfg = ExploreConfig {
                        max_states: max,
                        jobs,
                        ..Default::default()
                    };
                    let part = explore(&all, &cfg).unwrap();
                    let got = emit_set(&part);
                    assert!(
                        got.is_subset(&full),
                        "truncated emits must be a subset (max={max}, jobs={jobs})"
                    );
                }
            }
            full
        };
        assert_eq!(full.len(), 256);
        let _ = space;
    }

    #[test]
    fn depth_limit_prunes_but_keeps_walking() {
        let space = Bits { n: 8 };
        let cfg = ExploreConfig {
            max_depth: Some(3),
            ..Default::default()
        };
        let r = explore(&space, &cfg).unwrap();
        // All states of popcount <= 3 expanded, popcount-4 states
        // visited-but-pruned; the walk does not stop at first pruning.
        match r.stats.completeness {
            Completeness::Truncated {
                reason: TruncationReason::DepthLimit,
                frontier_len,
            } => assert_eq!(frontier_len, 70, "C(8,4) pruned states"),
            other => panic!("expected depth truncation, got {other:?}"),
        }
        let resume = r.resume.unwrap();
        assert_eq!(resume.frontier.len(), 70);
        assert!(resume
            .frontier
            .iter()
            .all(|&(s, d)| { s.count_ones() == 4 && d == 4 }));
    }

    #[test]
    fn depth_pruned_walk_resumes_to_exhaustive() {
        let space = Bits { n: 8 };
        let mut first = explore(
            &space,
            &ExploreConfig {
                max_depth: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        let resumed = explore_from(&space, &ExploreConfig::default(), first.resume.take()).unwrap();
        assert!(resumed.stats.completeness.is_exhaustive());
        let mut all = emit_set(&first);
        all.extend(resumed.emits.iter().copied());
        assert_eq!(all, BTreeSet::from([255u64]));
        // Fresh states only: the two runs partition the space.
        assert_eq!(first.stats.states + resumed.stats.states, 256);
    }

    #[test]
    fn zero_deadline_truncates_both_drivers() {
        for jobs in [1usize, 4] {
            let space = Bits { n: 14 };
            let cfg = ExploreConfig {
                deadline: Some(Duration::ZERO),
                jobs,
                ..Default::default()
            };
            let r = explore(&space, &cfg).unwrap();
            match r.stats.completeness {
                Completeness::Truncated {
                    reason: TruncationReason::Deadline,
                    ..
                } => {}
                other => panic!("jobs={jobs}: expected deadline truncation, got {other:?}"),
            }
            assert!(r.stats.states <= 32, "jobs={jobs}: {}", r.stats.states);
        }
    }

    #[test]
    fn slow_expansions_do_not_overshoot_deadline() {
        // Regression: the old driver polled the clock every 64
        // expansions, so a 3ms-per-step space overshot a 1ms deadline
        // by ~190ms. The adaptive poller must stop within a few steps.
        let space = SlowChain {
            len: 10_000,
            step: Duration::from_millis(3),
        };
        let cfg = ExploreConfig::default().deadline(Duration::from_millis(1));
        let r = explore(&space, &cfg).unwrap();
        assert!(
            matches!(
                r.stats.completeness,
                Completeness::Truncated {
                    reason: TruncationReason::Deadline,
                    ..
                }
            ),
            "{:?}",
            r.stats.completeness
        );
        assert!(
            r.stats.states < 10,
            "deadline overshot by {} slow expansions",
            r.stats.states
        );
    }

    #[test]
    fn completed_walk_ignores_generous_deadline() {
        let space = Bits { n: 8 };
        let cfg = ExploreConfig::default().deadline(Duration::from_secs(3600));
        let r = explore(&space, &cfg).unwrap();
        assert_eq!(r.stats.states, 256);
        assert!(r.stats.completeness.is_exhaustive());
    }

    #[test]
    fn halt_stops_early_but_is_exhaustive() {
        for jobs in [1usize, 4] {
            let space = HaltingChain {
                len: 100_000,
                stop: 10,
            };
            let cfg = ExploreConfig {
                jobs,
                ..Default::default()
            };
            let r = explore(&space, &cfg).unwrap();
            assert!(r.emits.contains(&10), "jobs={jobs}");
            assert!(r.stats.states < 100_000, "jobs={jobs}");
            // A halt is an intentional stop, not a budget truncation.
            assert!(r.stats.completeness.is_exhaustive(), "jobs={jobs}");
            assert!(r.resume.is_none(), "jobs={jobs}");
        }
    }

    #[test]
    fn resume_reproduces_exhaustive_outcome_set() {
        // Truncate, then resume (possibly several rounds); the union of
        // emissions must equal the single exhaustive run's, at every
        // jobs level, and no state may be visited twice.
        struct AllBits {
            n: u32,
        }
        impl StateSpace for AllBits {
            type State = u64;
            type Emit = u64;
            fn initial(&self) -> Vec<u64> {
                vec![0]
            }
            fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
                sink.emit(*state);
                for b in 0..self.n {
                    if state & (1 << b) == 0 {
                        sink.push(state | (1 << b));
                    }
                }
            }
        }
        let space = AllBits { n: 9 };
        let full = exhaustive_emits(&space);
        for jobs in [1usize, 2, 4] {
            let mut cfg = ExploreConfig {
                max_states: 40,
                jobs,
                ..Default::default()
            };
            let mut got: BTreeSet<u64> = BTreeSet::new();
            let mut total_states = 0usize;
            let mut resume = None;
            let mut rounds = 0;
            loop {
                let r = explore_from(&space, &cfg, resume.take()).unwrap();
                got.extend(r.emits.iter().copied());
                total_states += r.stats.states;
                rounds += 1;
                assert!(rounds < 200, "jobs={jobs}: did not converge");
                if r.stats.completeness.is_exhaustive() {
                    break;
                }
                resume = r.resume;
                assert!(
                    resume.is_some(),
                    "jobs={jobs}: truncated without checkpoint"
                );
                cfg.max_states = cfg.max_states.saturating_mul(2);
            }
            assert_eq!(got, full, "jobs={jobs}");
            assert_eq!(total_states, 512, "jobs={jobs}: states revisited or lost");
        }
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let space = Chain { len: 1_000 };
        let r = explore(&space, &ExploreConfig::with_max_states(25)).unwrap();
        let ckpt = r.resume.unwrap();
        let bytes = ckpt.to_bytes();
        let back = ResumeState::<u64>::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        // And the deserialized checkpoint actually resumes the walk.
        let resumed = explore_from(&space, &ExploreConfig::default(), Some(back)).unwrap();
        assert!(resumed.stats.completeness.is_exhaustive());
        assert_eq!(r.stats.states + resumed.stats.states, 1_001);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let ckpt = ResumeState::<u64> {
            frontier: vec![(7, 3), (9, 1)],
            visited_digests: [digest128(&1u64), digest128(&2u64)].into_iter().collect(),
        };
        let good = ckpt.to_bytes();
        assert_eq!(ResumeState::<u64>::from_bytes(&good).unwrap(), ckpt);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(ResumeState::<u64>::from_bytes(&bad).is_none());
        // Truncated at every length.
        for cut in 0..good.len() {
            assert!(
                ResumeState::<u64>::from_bytes(&good[..cut]).is_none(),
                "cut={cut}"
            );
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(ResumeState::<u64>::from_bytes(&long).is_none());
    }

    #[test]
    fn corrupt_checkpoints_report_the_fault() {
        let ckpt = ResumeState::<u64> {
            frontier: vec![(7, 3), (9, 1)],
            visited_digests: [digest128(&1u64), digest128(&2u64)].into_iter().collect(),
        };
        let good = ckpt.to_bytes();
        let fault = |bytes: &[u8]| match ResumeState::<u64>::try_from_bytes(bytes) {
            Ok(_) => panic!("mangled checkpoint decoded"),
            Err(ExploreError::CorruptCheckpoint(f)) => f,
            Err(e) => panic!("unexpected error {e:?}"),
        };
        // Any single flipped bit anywhere in the body trips the
        // checksum (the footer is verified before any field decoding,
        // so a flipped count can never drive a huge allocation or a
        // partial parse).
        for byte in 0..good.len() - CHECKPOINT_FOOTER_LEN {
            let mut bad = good.clone();
            bad[byte] ^= 0x01;
            let f = fault(&bad);
            assert!(
                f == CheckpointFault::ChecksumMismatch,
                "byte {byte}: expected ChecksumMismatch, got {f:?}"
            );
        }
        // Bytes lost from the end: the footer length no longer matches
        // (or there are not even enough bytes for the footer).
        let f = fault(&good[..good.len() - 1]);
        assert!(matches!(
            f,
            CheckpointFault::LengthMismatch | CheckpointFault::ChecksumMismatch
        ));
        assert_eq!(fault(&good[..4]), CheckpointFault::Truncated);
        assert_eq!(fault(&[]), CheckpointFault::Truncated);
        // A corrupt footer itself is caught too.
        let mut bad_footer = good.clone();
        let n = bad_footer.len();
        bad_footer[n - 1] ^= 0xff;
        assert_eq!(fault(&bad_footer), CheckpointFault::ChecksumMismatch);
        // And an internally consistent body with the wrong magic gets
        // the specific BadMagic fault: rebuild the footer over it.
        let mut wrong_magic = good[..good.len() - CHECKPOINT_FOOTER_LEN].to_vec();
        wrong_magic[0] = b'X';
        let sum = {
            // Recompute the footer the same way to_bytes does.
            let body_len = wrong_magic.len() as u64;
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &wrong_magic {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            (body_len, h)
        };
        wrong_magic.extend_from_slice(&sum.0.to_le_bytes());
        wrong_magic.extend_from_slice(&sum.1.to_le_bytes());
        assert_eq!(fault(&wrong_magic), CheckpointFault::BadMagic);
    }

    #[test]
    fn verdict_merge_is_worst_wins() {
        let unk = Verdict::Unknown {
            coverage: Coverage {
                states: 10,
                frontier_len: 2,
                reason: TruncationReason::StateLimit,
            },
        };
        assert_eq!(Verdict::Pass.merge(Verdict::Pass), Verdict::Pass);
        assert_eq!(Verdict::Pass.merge(Verdict::Fail), Verdict::Fail);
        assert_eq!(Verdict::Fail.merge(unk), Verdict::Fail);
        assert_eq!(unk.merge(Verdict::Fail), Verdict::Fail);
        // The soundness clause: Unknown merged with Pass stays Unknown
        // in both orders — a cache can never launder partial coverage
        // into a Pass.
        assert_eq!(Verdict::Pass.merge(unk), unk);
        assert_eq!(unk.merge(Verdict::Pass), unk);
        // Unknown + Unknown sums coverage.
        match unk.merge(unk) {
            Verdict::Unknown { coverage } => {
                assert_eq!(coverage.states, 20);
                assert_eq!(coverage.frontier_len, 4);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Exit-code image agrees with the verdict lattice.
        for a in [Verdict::Pass, Verdict::Fail, unk] {
            for b in [Verdict::Pass, Verdict::Fail, unk] {
                assert_eq!(
                    Verdict::merge_exit_codes(a.exit_code(), b.exit_code()),
                    a.merge(b).exit_code(),
                    "{a:?} + {b:?}"
                );
            }
        }
        // Usage errors dominate everything but FAIL.
        assert_eq!(Verdict::merge_exit_codes(2, 3), 2);
        assert_eq!(Verdict::merge_exit_codes(0, 2), 2);
        assert_eq!(Verdict::merge_exit_codes(2, 1), 1);
    }

    #[test]
    fn parked_checkpoints_resume_only_at_their_own_type() {
        let space = Chain { len: 100 };
        let r = explore(&space, &ExploreConfig::with_max_states(25)).unwrap();
        let ckpt = r.resume.unwrap();
        let (frontier_len, visited) = (ckpt.frontier.len(), ckpt.visited_digests.len());
        let parked = Checkpoint::park(ckpt);
        assert_eq!(parked.frontier_len(), frontier_len);
        assert_eq!(parked.visited(), visited);
        // Wrong state type: refused, not mis-resumed.
        assert!(Checkpoint::park(ResumeState::<u64> {
            frontier: vec![],
            visited_digests: HashSet::new(),
        })
        .resume::<u32>()
        .is_none());
        // Right type: the walk completes from where it stopped.
        let back = parked.resume::<u64>().unwrap();
        let resumed = explore_from(&space, &ExploreConfig::default(), Some(back)).unwrap();
        assert!(resumed.stats.completeness.is_exhaustive());
        assert_eq!(r.stats.states + resumed.stats.states, 101);
    }

    #[test]
    fn digests_are_stable_and_collision_resistant_enough() {
        assert_eq!(digest128(&42u64), digest128(&42u64));
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(digest128(&i)), "digest collision at {i}");
        }
    }

    #[test]
    fn retry_with_escalation_reaches_exhaustive() {
        let space = Chain { len: 500 };
        let cfg = ExploreConfig::with_max_states(8);
        let r = retry_with_escalation(&space, &cfg, 16).unwrap();
        assert!(r.stats.completeness.is_exhaustive());
        let got: BTreeSet<u64> = r.emits.iter().copied().collect();
        assert_eq!(got.len(), 501);
        // Escalation resumes: total fresh states across attempts equals
        // the space size, not a multiple of it.
        assert_eq!(r.stats.states, 501);
    }

    #[test]
    fn retry_with_escalation_respects_the_cap() {
        let space = Chain { len: 100_000 };
        let cfg = ExploreConfig::with_max_states(4);
        let r = retry_with_escalation(&space, &cfg, 2).unwrap();
        assert!(r.stats.completeness.is_truncated());
        assert!(r.resume.is_some());
    }

    #[test]
    fn one_shot_worker_panic_is_contained() {
        let space = PoisonOnce {
            n: 10,
            poison: 0b101,
            fired: AtomicBool::new(false),
        };
        let r = explore(&space, &ExploreConfig::default().jobs(4)).unwrap();
        // One worker died, survivors absorbed its queue AND the
        // in-flight poisoned state: the walk is still exhaustive.
        assert_eq!(r.stats.states, 1 << 10);
        assert_eq!(r.emits, vec![(1 << 10) - 1]);
        assert!(r.stats.completeness.is_exhaustive());
    }

    #[test]
    fn losing_all_workers_is_an_error() {
        let r = explore(&PoisonAlways, &ExploreConfig::default().jobs(4));
        match r {
            Err(ExploreError::WorkerPanic(4)) => {}
            other => panic!("expected WorkerPanic(4), got {other:?}"),
        }
    }

    #[test]
    fn retry_falls_back_to_sequential_after_worker_panic() {
        // PoisonOnce's panic fires exactly once; if all workers died
        // first (impossible here with 4 workers and one firing), retry
        // would rerun sequentially. Exercise the path directly with a
        // space that panics until its flag is spent.
        struct PanicFirstN {
            left: AtomicUsize,
        }
        impl StateSpace for PanicFirstN {
            type State = u64;
            type Emit = u64;
            fn initial(&self) -> Vec<u64> {
                vec![0]
            }
            fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
                if *state == 2 {
                    let mut cur = self.left.load(Ordering::SeqCst);
                    while cur > 0 {
                        match self.left.compare_exchange(
                            cur,
                            cur - 1,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        ) {
                            Ok(_) => panic!("transient poison"),
                            Err(observed) => cur = observed,
                        }
                    }
                }
                sink.emit(*state);
                if *state < 20 {
                    sink.push(state + 1);
                }
            }
        }
        let space = PanicFirstN {
            left: AtomicUsize::new(2),
        };
        let r = retry_with_escalation(&space, &ExploreConfig::default().jobs(2), 3).unwrap();
        assert!(r.stats.completeness.is_exhaustive());
        let got: BTreeSet<u64> = r.emits.iter().copied().collect();
        assert_eq!(got.len(), 21);
    }

    #[test]
    fn partition_matches_inline_fold() {
        let total = 10_000u64;
        let expect: u64 = (0..total).map(|i| i * i % 9973).sum();
        for jobs in [1usize, 4] {
            let cfg = ExploreConfig {
                jobs,
                ..Default::default()
            };
            let (parts, stats) = partition(total, &cfg, |range| {
                range.map(|i| i * i % 9973).sum::<u64>()
            });
            assert_eq!(parts.iter().sum::<u64>(), expect, "jobs={jobs}");
            assert_eq!(stats.states, total as usize, "jobs={jobs}");
            assert!(stats.completeness.is_exhaustive(), "jobs={jobs}");
        }
    }

    #[test]
    fn partition_handles_empty_tail_chunks() {
        // With jobs=4 the space is over-split into 32 chunks; totals
        // where div_ceil rounds up (33 → chunk_len 2) leave trailing
        // chunks entirely past `total`. Those must contribute empty
        // ranges and zero coverage, not underflow.
        let cfg = ExploreConfig {
            jobs: 4,
            ..Default::default()
        };
        for total in [1u64, 7, 31, 33, 63, 100] {
            let (parts, stats) = partition(total, &cfg, |range| range.sum::<u64>());
            assert_eq!(
                parts.iter().sum::<u64>(),
                (0..total).sum::<u64>(),
                "total={total}"
            );
            assert_eq!(stats.states, total as usize, "total={total}");
            assert!(stats.completeness.is_exhaustive(), "total={total}");
        }
    }

    #[test]
    fn partition_skips_chunks_past_deadline() {
        let cfg = ExploreConfig {
            jobs: 4,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let (parts, stats) = partition(10_000, &cfg, |range| range.count());
        assert!(parts.is_empty(), "all chunks must be skipped: {parts:?}");
        match stats.completeness {
            Completeness::Truncated {
                reason: TruncationReason::Deadline,
                frontier_len,
            } => assert!(frontier_len > 0),
            other => panic!("expected deadline truncation, got {other:?}"),
        }
        assert_eq!(stats.states, 0);
    }

    #[test]
    fn jobs_env_parsing() {
        // Only checks the fallback path: don't mutate the environment
        // (tests run in parallel threads).
        if std::env::var("VRM_JOBS").is_err() {
            assert_eq!(ExploreConfig::jobs_from_env(), 1);
        }
    }

    #[test]
    fn stats_absorb_combines_and_truncation_is_sticky() {
        let mut a = ExploreStats {
            states: 10,
            frontier_peak: 4,
            dedup_hits: 2,
            popped: 10,
            pushed: 9,
            steals: 0,
            wall_ns: 100,
            jobs: 1,
            completeness: Completeness::Exhaustive,
        };
        let b = ExploreStats {
            states: 5,
            frontier_peak: 9,
            dedup_hits: 1,
            popped: 5,
            pushed: 4,
            steals: 2,
            wall_ns: 50,
            jobs: 4,
            completeness: Completeness::Truncated {
                reason: TruncationReason::Deadline,
                frontier_len: 3,
            },
        };
        a.absorb(&b);
        assert_eq!(a.states, 15);
        assert_eq!(a.frontier_peak, 9);
        assert_eq!(a.dedup_hits, 3);
        assert_eq!(a.popped, 15);
        assert_eq!(a.pushed, 13);
        assert_eq!(a.steals, 2);
        assert_eq!(a.wall_ns, 100);
        assert_eq!(a.jobs, 4);
        assert_eq!(
            a.completeness,
            Completeness::Truncated {
                reason: TruncationReason::Deadline,
                frontier_len: 3,
            }
        );
        // Absorbing an exhaustive run does not launder the truncation.
        a.absorb(&ExploreStats::default());
        assert!(a.completeness.is_truncated());
    }

    #[test]
    fn completeness_merge_is_truncation_sticky() {
        let t1 = Completeness::Truncated {
            reason: TruncationReason::StateLimit,
            frontier_len: 2,
        };
        let t2 = Completeness::Truncated {
            reason: TruncationReason::Deadline,
            frontier_len: 5,
        };
        let mut c = Completeness::Exhaustive;
        c.merge(t1);
        assert_eq!(c, t1);
        c.merge(Completeness::Exhaustive);
        assert_eq!(c, t1, "exhaustive must not overwrite truncation");
        c.merge(t2);
        assert_eq!(
            c,
            Completeness::Truncated {
                reason: TruncationReason::StateLimit,
                frontier_len: 7,
            },
            "first reason wins, frontiers add"
        );
    }

    #[test]
    fn verdict_from_parts_honours_truncation() {
        let full = ExploreStats {
            states: 100,
            ..Default::default()
        };
        assert_eq!(Verdict::from_parts(true, &full), Verdict::Pass);
        assert_eq!(Verdict::from_parts(false, &full), Verdict::Fail);
        let cut = ExploreStats {
            states: 100,
            completeness: Completeness::Truncated {
                reason: TruncationReason::StateLimit,
                frontier_len: 7,
            },
            ..Default::default()
        };
        for holds in [true, false] {
            match Verdict::from_parts(holds, &cut) {
                Verdict::Unknown { coverage } => {
                    assert_eq!(coverage.states, 100);
                    assert_eq!(coverage.frontier_len, 7);
                    assert_eq!(coverage.reason, TruncationReason::StateLimit);
                }
                other => panic!("truncated walk yielded {other:?} (holds={holds})"),
            }
        }
    }

    #[test]
    fn verdict_exit_codes_and_display() {
        assert_eq!(Verdict::Pass.exit_code(), 0);
        assert_eq!(Verdict::Fail.exit_code(), 1);
        let u = Verdict::Unknown {
            coverage: Coverage {
                states: 12,
                frontier_len: 3,
                reason: TruncationReason::Deadline,
            },
        };
        assert_eq!(u.exit_code(), 3);
        let s = format!("{u}");
        assert!(s.starts_with("UNKNOWN"), "{s}");
        assert!(s.contains("12 states"), "{s}");
        assert!(s.contains("deadline"), "{s}");
        assert_eq!(format!("{}", Verdict::Pass), "PASS");
        assert_eq!(format!("{}", Verdict::Fail), "FAIL");
    }

    #[test]
    fn verdict_merge_unknowns_sum_coverage_and_keep_left_reason() {
        // Two walks stopped by *different* budgets: the evidence is
        // additive (both walks' states were really visited) while the
        // reason is positional — the left side names the merged stop.
        let a = Verdict::Unknown {
            coverage: Coverage {
                states: 10,
                frontier_len: 2,
                reason: TruncationReason::StateLimit,
            },
        };
        let b = Verdict::Unknown {
            coverage: Coverage {
                states: 7,
                frontier_len: 5,
                reason: TruncationReason::Deadline,
            },
        };
        match a.merge(b) {
            Verdict::Unknown { coverage } => {
                assert_eq!(coverage.states, 17);
                assert_eq!(coverage.frontier_len, 7);
                assert_eq!(coverage.reason, TruncationReason::StateLimit);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        match b.merge(a) {
            Verdict::Unknown { coverage } => {
                assert_eq!(coverage.states, 17);
                assert_eq!(coverage.frontier_len, 7);
                assert_eq!(coverage.reason, TruncationReason::Deadline);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn fail_evidence_dominates_truncated_unknowns() {
        // A counterexample is sound evidence even when every other leg
        // was budget-starved: Fail merged with an Unknown *derived from
        // a real truncated run* stays Fail in both orders. This is the
        // shape a differential fuzzer hits constantly — one model leg
        // truncates (Unknown), the conformance check on the finished
        // legs finds a genuine disagreement (Fail); the merged batch
        // verdict must surface the disagreement, not dilute it.
        let cut = ExploreStats {
            states: 3,
            completeness: Completeness::Truncated {
                reason: TruncationReason::StateLimit,
                frontier_len: 11,
            },
            ..Default::default()
        };
        let unknown = Verdict::from_parts(true, &cut);
        assert!(unknown.is_unknown());
        assert_eq!(Verdict::Fail.merge(unknown), Verdict::Fail);
        assert_eq!(unknown.merge(Verdict::Fail), Verdict::Fail);
        assert_eq!(Verdict::merge_exit_codes(1, 3), 1);
        assert_eq!(Verdict::merge_exit_codes(3, 1), 1);
        // A starved walk that visited *nothing* still reports Unknown
        // with zero-state coverage — never Pass by vacuity.
        let empty = ExploreStats {
            states: 0,
            completeness: Completeness::Truncated {
                reason: TruncationReason::StateLimit,
                frontier_len: 1,
            },
            ..Default::default()
        };
        match Verdict::from_parts(true, &empty) {
            Verdict::Unknown { coverage } => assert_eq!(coverage.states, 0),
            other => panic!("empty truncated walk yielded {other:?}"),
        }
    }

    #[test]
    fn merge_exit_codes_edge_cases() {
        // Identity on agreeing codes.
        assert_eq!(Verdict::merge_exit_codes(0, 0), 0);
        assert_eq!(Verdict::merge_exit_codes(3, 3), 3);
        assert_eq!(Verdict::merge_exit_codes(1, 1), 1);
        assert_eq!(Verdict::merge_exit_codes(2, 2), 2);
        // Unknown beats pass both ways.
        assert_eq!(Verdict::merge_exit_codes(0, 3), 3);
        assert_eq!(Verdict::merge_exit_codes(3, 0), 3);
        // Codes outside the convention rank as usage errors: above
        // unknown, below fail, and the *left* code survives a tie so a
        // specific nonstandard code is not rewritten to 2.
        assert_eq!(Verdict::merge_exit_codes(5, 3), 5);
        assert_eq!(Verdict::merge_exit_codes(5, 2), 5);
        assert_eq!(Verdict::merge_exit_codes(2, 5), 2);
        assert_eq!(Verdict::merge_exit_codes(5, 1), 1);
    }

    #[test]
    fn deadline_poller_goes_dense_near_the_deadline() {
        let mut p = DeadlinePoller::new(Instant::now(), Duration::from_millis(50));
        // Burn fast iterations: stride should grow past 1.
        let mut calls = 0u64;
        while calls < 100_000 && !p.expired() {
            calls += 1;
        }
        assert!(p.stride > 1, "poller never widened its stride");
        // A poller whose deadline passed must report it promptly.
        let mut q = DeadlinePoller::new(Instant::now(), Duration::ZERO);
        assert!(q.expired());
    }
}
