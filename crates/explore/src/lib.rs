//! The shared state-space exploration engine.
//!
//! Every verification result in this workspace — litmus verdicts, wDRF
//! condition checks, the RM⊆SC enumeration behind `check_wdrf`, and the
//! SeKVM machine's exhaustive schedules — is a *proof by exhaustive
//! enumeration*: walk every reachable state of a model, dedup on a
//! visited set, collect what terminal states say. This crate provides
//! the one audited implementation of that walk, replacing the five
//! hand-rolled worklist loops the models used to carry.
//!
//! A model implements [`StateSpace`]: it names a hashable `State`, lists
//! the [`StateSpace::initial`] states, and expands any state into its
//! successors through a [`Sink`] (also emitting terminal results —
//! outcomes, violations — through the same sink). The engine owns the
//! frontier, the visited set, limit/deadline enforcement, and
//! statistics.
//!
//! Two interchangeable drivers sit behind [`explore`]:
//!
//! * the **sequential** driver (`jobs <= 1`, the default) — a LIFO
//!   worklist identical in visit order to the loops it replaced, so
//!   every deterministic test is bit-for-bit unchanged;
//! * the **parallel** driver — `std::thread::scope` workers over
//!   per-worker deques with work stealing, deduplicating through a
//!   sharded `Mutex<HashSet>` visited set. Std only: the build
//!   environment is offline, so rayon/crossbeam are not available.
//!
//! Both drivers explore exactly the same state set; only the order (and
//! hence the order of emissions) differs. Callers that fold emissions
//! into sets observe identical results from either driver.
//!
//! [`partition`] covers the second shape of enumeration in the
//! workspace: an embarrassingly parallel sweep over an index space
//! (axiomatic candidate combos, per-execution condition checks) with the
//! same configuration, deadline and statistics plumbing.

#![warn(missing_docs)]

use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How an exploration is bounded and driven.
///
/// One config type serves all four models; each model converts its own
/// public config into this before calling [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Abort with [`ExploreError::StateLimit`] when the visited set
    /// grows past this many states.
    pub max_states: usize,
    /// Abort with [`ExploreError::DepthLimit`] when a successor would
    /// sit deeper than this many steps from an initial state.
    pub max_depth: Option<usize>,
    /// Abort with [`ExploreError::Deadline`] when the walk runs longer
    /// than this.
    pub deadline: Option<Duration>,
    /// Worker threads. `0` or `1` selects the sequential reference
    /// driver; `n > 1` the work-stealing parallel driver.
    pub jobs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: usize::MAX,
            max_depth: None,
            deadline: None,
            jobs: 1,
        }
    }
}

impl ExploreConfig {
    /// A config bounded only by `max_states`, sequential.
    pub fn with_max_states(max_states: usize) -> Self {
        ExploreConfig {
            max_states,
            ..Default::default()
        }
    }

    /// Sets the worker count, returning the config (builder style).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the deadline, returning the config (builder style).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The worker count requested through the `VRM_JOBS` environment
    /// variable, defaulting to 1 (sequential) when unset or unparsable.
    ///
    /// Tests and benches use this so `VRM_JOBS=8 cargo test` exercises
    /// the parallel driver everywhere without touching any call site.
    pub fn jobs_from_env() -> usize {
        std::env::var("VRM_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }
}

/// What an exploration did: the observability half of every
/// enumeration, carried alongside each model's outcome set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states inserted into the visited set.
    pub states: usize,
    /// High-water mark of the frontier (pending, unexpanded states).
    pub frontier_peak: usize,
    /// Successors that were already in the visited set.
    pub dedup_hits: usize,
    /// Wall-clock time of the walk, in nanoseconds (u64 keeps the
    /// struct `Copy`+`Eq`; see [`ExploreStats::wall`]).
    pub wall_ns: u64,
    /// Worker threads the driving config requested.
    pub jobs: usize,
}

impl ExploreStats {
    /// Wall-clock time of the walk.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns)
    }

    /// Folds another run's stats into this one (sums counters, keeps
    /// the larger peak and wall time).
    pub fn absorb(&mut self, other: &ExploreStats) {
        self.states += other.states;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.dedup_hits += other.dedup_hits;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.jobs = self.jobs.max(other.jobs);
    }
}

/// Why an exploration aborted. The single error currency shared by the
/// SC, Promising, axiomatic and machine enumerations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// The visited set outgrew [`ExploreConfig::max_states`]; the
    /// payload is the observed count.
    StateLimit(usize),
    /// A path outgrew [`ExploreConfig::max_depth`]; the payload is the
    /// offending depth.
    DepthLimit(usize),
    /// The walk outran [`ExploreConfig::deadline`].
    Deadline,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateLimit(n) => {
                write!(
                    f,
                    "state-space exploration exceeded the state limit at {n} states"
                )
            }
            ExploreError::DepthLimit(d) => {
                write!(
                    f,
                    "state-space exploration exceeded the depth limit at depth {d}"
                )
            }
            ExploreError::Deadline => write!(f, "state-space exploration exceeded its deadline"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Where [`StateSpace::expand`] deposits successors and emissions.
#[derive(Debug)]
pub struct Sink<S, E> {
    succ: Vec<S>,
    emits: Vec<E>,
    halted: bool,
}

impl<S, E> Sink<S, E> {
    fn new() -> Self {
        Sink {
            succ: Vec::new(),
            emits: Vec::new(),
            halted: false,
        }
    }

    /// Adds a successor state to the frontier (deduplicated by the
    /// engine against everything already visited).
    pub fn push(&mut self, state: S) {
        self.succ.push(state);
    }

    /// Emits a result — a terminal outcome, a ghost violation, a
    /// truncation marker. The engine collects emissions from all
    /// workers and hands them back in [`Exploration::emits`].
    pub fn emit(&mut self, emit: E) {
        self.emits.push(emit);
    }

    /// Requests early termination of the walk: searches that only need
    /// one result (promise certification, witness search) emit it and
    /// halt. The sequential driver stops immediately, discarding this
    /// expansion's successors; parallel workers stop cooperatively, so
    /// emissions from expansions already in flight are still returned.
    pub fn halt(&mut self) {
        self.halted = true;
    }
}

/// A model exposed to the engine: initial states plus a successor
/// relation.
///
/// `expand` takes `&self`, so any bookkeeping a model used to do
/// through `&mut self` (ghost violations, truncation flags) is emitted
/// through the [`Sink`] instead — that is what makes one implementation
/// serve both the sequential and the parallel driver.
pub trait StateSpace: Sync {
    /// One reachable configuration of the model.
    type State: Clone + Eq + Hash + Send;
    /// What terminal states (or the expansion itself) report.
    type Emit: Send;

    /// The root states of the walk.
    fn initial(&self) -> Vec<Self::State>;

    /// Pushes every successor of `state` (and any emissions) into the
    /// sink. A state with no successors is terminal.
    fn expand(&self, state: &Self::State, sink: &mut Sink<Self::State, Self::Emit>);
}

/// What [`explore`] returns: everything the space emitted, plus stats.
#[derive(Debug)]
pub struct Exploration<E> {
    /// All emissions, in visit order for the sequential driver and in
    /// nondeterministic order for the parallel one.
    pub emits: Vec<E>,
    /// Counters and timing for the walk.
    pub stats: ExploreStats,
}

/// Explores the whole state space of `space` under `cfg`, dispatching
/// to the sequential or parallel driver on [`ExploreConfig::jobs`].
pub fn explore<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
) -> Result<Exploration<SP::Emit>, ExploreError> {
    if cfg.jobs > 1 {
        parallel(space, cfg)
    } else {
        sequential(space, cfg)
    }
}

/// The sequential reference driver: a LIFO worklist with a single
/// visited set, field-for-field the loop the individual models used to
/// hand-roll. Kept as the default so deterministic tests (witness
/// traces, visit-order-sensitive diagnostics) are bit-for-bit
/// unchanged.
fn sequential<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
) -> Result<Exploration<SP::Emit>, ExploreError> {
    let start = Instant::now();
    let mut stats = ExploreStats {
        jobs: 1,
        ..Default::default()
    };
    let mut visited: HashSet<SP::State> = HashSet::new();
    let mut stack: Vec<(SP::State, usize)> = Vec::new();
    let mut emits: Vec<SP::Emit> = Vec::new();
    for s in space.initial() {
        if visited.insert(s.clone()) {
            stack.push((s, 0));
        }
    }
    stats.frontier_peak = stack.len();
    let mut sink = Sink::new();
    let mut since_deadline_check = 0u32;
    while let Some((state, depth)) = stack.pop() {
        if let Some(deadline) = cfg.deadline {
            since_deadline_check += 1;
            if since_deadline_check >= 64 {
                since_deadline_check = 0;
                if start.elapsed() > deadline {
                    return Err(ExploreError::Deadline);
                }
            }
        }
        space.expand(&state, &mut sink);
        emits.append(&mut sink.emits);
        if sink.halted {
            sink.succ.clear();
            break;
        }
        for next in sink.succ.drain(..) {
            if visited.insert(next.clone()) {
                if visited.len() > cfg.max_states {
                    return Err(ExploreError::StateLimit(visited.len()));
                }
                if let Some(max_depth) = cfg.max_depth {
                    if depth + 1 > max_depth {
                        return Err(ExploreError::DepthLimit(depth + 1));
                    }
                }
                stack.push((next, depth + 1));
                stats.frontier_peak = stats.frontier_peak.max(stack.len());
            } else {
                stats.dedup_hits += 1;
            }
        }
    }
    stats.states = visited.len();
    stats.wall_ns = start.elapsed().as_nanos() as u64;
    Ok(Exploration { emits, stats })
}

/// The visited set of the parallel driver: `HashSet` shards behind
/// mutexes, indexed by the state's hash, so concurrent inserts on
/// different shards never contend.
struct ShardedVisited<S> {
    shards: Vec<Mutex<HashSet<S>>>,
    hasher: BuildHasherDefault<DefaultHasher>,
    len: AtomicUsize,
}

impl<S: Eq + Hash> ShardedVisited<S> {
    fn new(shards: usize) -> Self {
        ShardedVisited {
            shards: (0..shards).map(|_| Mutex::new(HashSet::new())).collect(),
            hasher: BuildHasherDefault::default(),
            len: AtomicUsize::new(0),
        }
    }

    /// Inserts, returning the new global count on success and `None`
    /// on a dedup hit.
    fn insert(&self, state: S) -> Option<usize> {
        let shard = (self.hasher.hash_one(&state) as usize) % self.shards.len();
        let fresh = self.shards[shard]
            .lock()
            .expect("visited shard poisoned")
            .insert(state);
        if fresh {
            Some(self.len.fetch_add(1, Ordering::Relaxed) + 1)
        } else {
            None
        }
    }
}

/// The work-stealing parallel driver. Each worker owns a deque: it
/// pushes and pops at the back (depth-first, cache-friendly) and
/// steals from the front of a victim's deque when starved. A shared
/// `pending` count of not-yet-expanded states provides termination:
/// when it reaches zero, no state exists anywhere and no expansion is
/// in flight, so the frontier can never grow again.
fn parallel<SP: StateSpace>(
    space: &SP,
    cfg: &ExploreConfig,
) -> Result<Exploration<SP::Emit>, ExploreError> {
    let start = Instant::now();
    let jobs = cfg.jobs.max(2);
    let visited: ShardedVisited<SP::State> = ShardedVisited::new((jobs * 8).next_power_of_two());
    type WorkQueue<S> = Mutex<VecDeque<(S, usize)>>;
    let queues: Vec<WorkQueue<SP::State>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    let pending = AtomicUsize::new(0);
    let frontier_peak = AtomicUsize::new(0);
    let dedup_hits = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // First error wins; u64::MAX = none. Encoded to stay lock-free.
    let error: Mutex<Option<ExploreError>> = Mutex::new(None);
    let deadline_ns: Option<u64> = cfg.deadline.map(|d| d.as_nanos() as u64);

    // Seed the workers' deques round-robin with the initial states.
    let init = space.initial();
    {
        let mut count = 0usize;
        for (i, s) in init.into_iter().enumerate() {
            if visited.insert(s.clone()).is_some() {
                queues[i % jobs].lock().unwrap().push_back((s, 0));
                count += 1;
            }
        }
        pending.store(count, Ordering::SeqCst);
        frontier_peak.store(count, Ordering::Relaxed);
    }

    let fail = |e: ExploreError| {
        let mut slot = error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        abort.store(true, Ordering::SeqCst);
    };

    let mut all_emits: Vec<SP::Emit> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for me in 0..jobs {
            let queues = &queues;
            let visited = &visited;
            let pending = &pending;
            let frontier_peak = &frontier_peak;
            let dedup_hits = &dedup_hits;
            let abort = &abort;
            let fail = &fail;
            handles.push(scope.spawn(move || {
                let mut emits: Vec<SP::Emit> = Vec::new();
                let mut sink = Sink::new();
                let mut spins = 0u32;
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(deadline) = deadline_ns {
                        if start.elapsed().as_nanos() as u64 > deadline {
                            fail(ExploreError::Deadline);
                            break;
                        }
                    }
                    // Own queue first (LIFO), then steal (FIFO).
                    let job = {
                        let own = queues[me].lock().unwrap().pop_back();
                        match own {
                            Some(j) => Some(j),
                            None => (1..jobs)
                                .find_map(|d| queues[(me + d) % jobs].lock().unwrap().pop_front()),
                        }
                    };
                    let Some((state, depth)) = job else {
                        if pending.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        spins += 1;
                        if spins > 64 {
                            std::thread::sleep(Duration::from_micros(50));
                        } else {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    spins = 0;
                    space.expand(&state, &mut sink);
                    emits.append(&mut sink.emits);
                    if sink.halted {
                        sink.halted = false;
                        sink.succ.clear();
                        abort.store(true, Ordering::SeqCst);
                        break;
                    }
                    let mut fresh: Vec<(SP::State, usize)> = Vec::new();
                    for next in sink.succ.drain(..) {
                        match visited.insert(next.clone()) {
                            Some(total) => {
                                if total > cfg.max_states {
                                    fail(ExploreError::StateLimit(total));
                                    break;
                                }
                                if let Some(max_depth) = cfg.max_depth {
                                    if depth + 1 > max_depth {
                                        fail(ExploreError::DepthLimit(depth + 1));
                                        break;
                                    }
                                }
                                fresh.push((next, depth + 1));
                            }
                            None => {
                                dedup_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    sink.succ.clear();
                    // Account for the successors BEFORE they become
                    // stealable: every queued state is represented in
                    // `pending`, so a thief finishing one early can
                    // never drive the counter to zero (or below) while
                    // work still exists. The expanded state's own count
                    // is released only after its successors are in.
                    if !fresh.is_empty() {
                        let now = pending.fetch_add(fresh.len(), Ordering::SeqCst) + fresh.len();
                        frontier_peak.fetch_max(now, Ordering::Relaxed);
                        let mut own = queues[me].lock().unwrap();
                        for item in fresh {
                            own.push_back(item);
                        }
                    }
                    pending.fetch_sub(1, Ordering::SeqCst);
                }
                emits
            }));
        }
        for h in handles {
            if let Ok(mut e) = h.join() {
                all_emits.append(&mut e);
            }
        }
    });

    if let Some(e) = error.lock().unwrap().take() {
        return Err(e);
    }
    Ok(Exploration {
        emits: all_emits,
        stats: ExploreStats {
            states: visited.len.load(Ordering::Relaxed),
            frontier_peak: frontier_peak.load(Ordering::Relaxed),
            dedup_hits: dedup_hits.load(Ordering::Relaxed),
            wall_ns: start.elapsed().as_nanos() as u64,
            jobs,
        },
    })
}

/// An embarrassingly parallel sweep over the index space `0..total`.
///
/// The range is cut into chunks; `work` folds one chunk into a partial
/// result; the partials come back in chunk order, so a deterministic
/// merge gives identical results for any `jobs`. With `jobs <= 1` the
/// whole range is one chunk processed inline — exactly the loop the
/// caller would have written. Used for enumerations that are a product
/// space rather than a frontier: axiomatic execution candidates,
/// per-execution condition sweeps.
pub fn partition<T, F>(
    total: u64,
    cfg: &ExploreConfig,
    work: F,
) -> Result<(Vec<T>, ExploreStats), ExploreError>
where
    T: Send,
    F: Fn(std::ops::Range<u64>) -> Result<T, ExploreError> + Sync,
{
    let start = Instant::now();
    if cfg.jobs <= 1 || total < 2 {
        let out = work(0..total)?;
        let stats = ExploreStats {
            states: total as usize,
            frontier_peak: 1,
            dedup_hits: 0,
            wall_ns: start.elapsed().as_nanos() as u64,
            jobs: 1,
        };
        return Ok((vec![out], stats));
    }
    let jobs = cfg.jobs;
    // Over-split so fast workers can take more chunks (dynamic load
    // balancing without a scheduler).
    let chunks = (jobs as u64 * 8).min(total);
    let chunk_len = total.div_ceil(chunks);
    let next = AtomicU64::new(0);
    let deadline = cfg.deadline;
    let slots: Vec<Mutex<Option<Result<T, ExploreError>>>> =
        (0..chunks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let next = &next;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= chunks {
                    break;
                }
                if let Some(d) = deadline {
                    if start.elapsed() > d {
                        *slots[i as usize].lock().unwrap() = Some(Err(ExploreError::Deadline));
                        continue;
                    }
                }
                let lo = i * chunk_len;
                let hi = ((i + 1) * chunk_len).min(total);
                let r = work(lo..hi);
                *slots[i as usize].lock().unwrap() = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(chunks as usize);
    for slot in slots {
        match slot.into_inner().unwrap() {
            Some(Ok(t)) => out.push(t),
            // First failing chunk in index order wins, mirroring what
            // the sequential loop would have hit first.
            Some(Err(e)) => return Err(e),
            None => unreachable!("every chunk is claimed by some worker"),
        }
    }
    let stats = ExploreStats {
        states: total as usize,
        frontier_peak: chunks as usize,
        dedup_hits: 0,
        wall_ns: start.elapsed().as_nanos() as u64,
        jobs,
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A toy space: states are bit-vectors of length `n` (as u64 masks
    /// plus a length), successors set one more bit; terminal states
    /// (all bits set) emit their construction count.
    struct Bits {
        n: u32,
    }

    impl StateSpace for Bits {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if state.count_ones() == self.n {
                sink.emit(*state);
                return;
            }
            for b in 0..self.n {
                if state & (1 << b) == 0 {
                    sink.push(state | (1 << b));
                }
            }
        }
    }

    /// A deep linear chain, for depth/limit tests.
    struct Chain {
        len: u64,
    }

    impl StateSpace for Chain {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if *state + 1 < self.len {
                sink.push(state + 1);
            } else {
                sink.emit(*state);
            }
        }
    }

    /// A wide space that takes a while to walk (for deadline tests
    /// under contention): a 16-bit hypercube.
    fn slow_space() -> Bits {
        Bits { n: 16 }
    }

    #[test]
    fn sequential_visits_whole_hypercube() {
        let r = explore(&Bits { n: 10 }, &ExploreConfig::default()).unwrap();
        assert_eq!(r.stats.states, 1 << 10);
        assert_eq!(r.emits, vec![(1u64 << 10) - 1]);
        assert!(r.stats.dedup_hits > 0);
    }

    #[test]
    fn parallel_matches_sequential_state_count_and_emits() {
        for jobs in [2, 4, 8] {
            let seq = explore(&Bits { n: 12 }, &ExploreConfig::default()).unwrap();
            let par = explore(
                &Bits { n: 12 },
                &ExploreConfig {
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(par.stats.states, seq.stats.states, "jobs={jobs}");
            let seq_set: BTreeSet<u64> = seq.emits.iter().copied().collect();
            let par_set: BTreeSet<u64> = par.emits.iter().copied().collect();
            assert_eq!(par_set, seq_set, "jobs={jobs}");
        }
    }

    /// A chain space that emits and halts as soon as it reaches `stop`.
    struct HaltingChain {
        len: u64,
        stop: u64,
    }

    impl StateSpace for HaltingChain {
        type State = u64;
        type Emit = u64;

        fn initial(&self) -> Vec<u64> {
            vec![0]
        }

        fn expand(&self, state: &u64, sink: &mut Sink<u64, u64>) {
            if *state == self.stop {
                sink.emit(*state);
                sink.halt();
                return;
            }
            if *state + 1 < self.len {
                sink.push(state + 1);
            }
        }
    }

    #[test]
    fn halt_stops_the_walk_early_in_both_drivers() {
        for jobs in [1, 2, 8] {
            let r = explore(
                &HaltingChain {
                    len: 1 << 20,
                    stop: 100,
                },
                &ExploreConfig {
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(r.emits.contains(&100), "jobs={jobs}");
            // The walk must stop near the halt point, not run the
            // million-state chain to the end (parallel workers may
            // overshoot by whatever was in flight).
            assert!(r.stats.states < 10_000, "jobs={jobs}: {}", r.stats.states);
        }
    }

    #[test]
    fn state_limit_enforced_sequential() {
        let err = explore(
            &Bits { n: 12 },
            &ExploreConfig {
                max_states: 100,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::StateLimit(n) if n > 100));
    }

    #[test]
    fn state_limit_enforced_under_contention() {
        for jobs in [2, 8] {
            let err = explore(
                &slow_space(),
                &ExploreConfig {
                    max_states: 500,
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap_err();
            // Workers may overshoot by in-flight inserts, but the limit
            // must still abort the walk well short of the full 2^16.
            assert!(
                matches!(err, ExploreError::StateLimit(n) if n > 500 && n < 1 << 16),
                "jobs={jobs}: {err:?}"
            );
        }
    }

    #[test]
    fn depth_limit_enforced_both_drivers() {
        for jobs in [1, 4] {
            let err = explore(
                &Chain { len: 10_000 },
                &ExploreConfig {
                    max_depth: Some(100),
                    jobs,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert_eq!(err, ExploreError::DepthLimit(101), "jobs={jobs}");
        }
    }

    #[test]
    fn deadline_enforced_under_contention() {
        for jobs in [1, 4] {
            let err = explore(
                &slow_space(),
                &ExploreConfig {
                    deadline: Some(Duration::ZERO),
                    jobs,
                    ..Default::default()
                },
            );
            assert_eq!(err.unwrap_err(), ExploreError::Deadline, "jobs={jobs}");
        }
    }

    #[test]
    fn completed_walk_ignores_generous_deadline() {
        let r = explore(
            &Bits { n: 8 },
            &ExploreConfig {
                deadline: Some(Duration::from_secs(3600)),
                jobs: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.stats.states, 1 << 8);
    }

    #[test]
    fn partition_matches_inline_fold() {
        let sum_range = |r: std::ops::Range<u64>| Ok(r.sum::<u64>());
        let (seq, _) = partition(10_000, &ExploreConfig::default(), sum_range).unwrap();
        for jobs in [2, 4, 8] {
            let (par, stats) = partition(
                10_000,
                &ExploreConfig {
                    jobs,
                    ..Default::default()
                },
                sum_range,
            )
            .unwrap();
            assert_eq!(
                par.iter().sum::<u64>(),
                seq.iter().sum::<u64>(),
                "jobs={jobs}"
            );
            assert_eq!(stats.jobs, jobs);
        }
    }

    #[test]
    fn partition_propagates_errors() {
        let r = partition(
            1000,
            &ExploreConfig {
                jobs: 4,
                ..Default::default()
            },
            |r| {
                if r.contains(&777) {
                    Err(ExploreError::StateLimit(777))
                } else {
                    Ok(r.end - r.start)
                }
            },
        );
        assert_eq!(r.unwrap_err(), ExploreError::StateLimit(777));
    }

    #[test]
    fn jobs_env_parsing() {
        // Not set in the test environment unless the harness sets it;
        // whatever the value, it must be >= 1.
        assert!(ExploreConfig::jobs_from_env() >= 1);
    }

    #[test]
    fn stats_absorb_combines() {
        let mut a = ExploreStats {
            states: 10,
            frontier_peak: 4,
            dedup_hits: 2,
            wall_ns: 100,
            jobs: 1,
        };
        a.absorb(&ExploreStats {
            states: 5,
            frontier_peak: 9,
            dedup_hits: 1,
            wall_ns: 50,
            jobs: 4,
        });
        assert_eq!(a.states, 15);
        assert_eq!(a.frontier_peak, 9);
        assert_eq!(a.dedup_hits, 3);
        assert_eq!(a.wall_ns, 100);
        assert_eq!(a.jobs, 4);
    }
}
