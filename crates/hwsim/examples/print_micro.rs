fn main() {
    use vrm_hwsim::*;
    for hw in [HwConfig::m400(), HwConfig::seattle()] {
        for kind in [HypKind::Kvm, HypKind::SeKvm] {
            let m = simulate_micro(hw, HypConfig::new(kind, KernelVersion::V4_18));
            println!("{:8} {:6} {:?}", hw.name, kind.name(), m);
        }
    }
}
