//! A cycle-approximate Arm multiprocessor/hypervisor performance simulator.
//!
//! The VRM paper's evaluation (§6) runs stock KVM and SeKVM on two real
//! Armv8 servers — an HP Moonshot m400 (Applied Micro X-Gene, tiny TLB)
//! and an AMD Seattle (Opteron A1100) — measuring microbenchmark cycle
//! counts (Table 3), single-VM application performance normalized to
//! native (Figure 8), and 1–32-VM scalability (Figure 9).
//!
//! Since that hardware is unavailable here, this crate substitutes a
//! parameterized analytical simulator. Cost components are interpretable
//! (exception entry cost, instruction throughput, nested-page-walk cost,
//! TLB capacity pressure), and the constants are *calibrated* so that the
//! paper's qualitative shape is reproduced:
//!
//! * SeKVM's microbenchmark overhead is large on the m400 (≈1.8–2.3×,
//!   driven by its tiny TLB and SeKVM's 4 KB KServ stage-2 mappings) but
//!   modest on Seattle (≈1.2–1.3×);
//! * application benchmarks run within 10% of stock KVM on both machines;
//! * multi-VM scaling curves for SeKVM track stock KVM out to 32 VMs.
//!
//! Absolute cycle numbers are synthetic; EXPERIMENTS.md records
//! paper-vs-simulated values side by side.

#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod cost;
pub mod discrete;
pub mod micro;
pub mod multivm;
pub mod tracesim;

pub use apps::{simulate_app, simulate_app_with_vcpus, workloads, AppResult, Workload};
pub use config::{HwConfig, HypConfig, HypKind, KernelVersion};
pub use cost::CostModel;
pub use discrete::simulate_multivm_discrete;
pub use micro::{simulate_micro, MicroResults};
pub use multivm::{simulate_multivm, VM_COUNTS};
pub use tracesim::{simulate_exit_trace, TraceSimResult};
