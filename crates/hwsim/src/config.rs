//! Hardware and hypervisor configurations (§6's two servers and two
//! hypervisors across two kernel versions).

/// A hardware platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwConfig {
    /// Display name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: u32,
    /// Clock in GHz (reporting only; costs are in cycles).
    pub freq_ghz: f64,
    /// Exception entry/exit (one EL transition) in cycles.
    pub c_exc: u64,
    /// Average cycles per instruction in hypervisor/kernel code.
    pub c_inst: f64,
    /// Cycles per page-walk memory reference (TLB refill).
    pub c_mem: u64,
    /// Unified TLB capacity (entries).
    pub tlb_entries: u64,
    /// TLB pressure scale: working sets are thrashed in proportion to
    /// `1 - tlb_entries / tlb_scale` (clamped at 0).
    pub tlb_scale: u64,
}

impl HwConfig {
    /// HP Moonshot m400: 8-core 2.4 GHz Applied Micro X-Gene. The X-Gene
    /// has a notoriously tiny TLB, which the paper identifies as the cause
    /// of SeKVM's high microbenchmark overhead on this machine.
    pub fn m400() -> Self {
        HwConfig {
            name: "m400",
            cores: 8,
            freq_ghz: 2.4,
            c_exc: 500,
            c_inst: 1.05,
            c_mem: 28,
            tlb_entries: 48,
            tlb_scale: 256,
        }
    }

    /// AMD Seattle Rev.B0: 8-core 2 GHz Opteron A1100 (Cortex-A57-class,
    /// "more reasonable" TLB sizes per the paper).
    pub fn seattle() -> Self {
        HwConfig {
            name: "Seattle",
            cores: 8,
            freq_ghz: 2.0,
            c_exc: 650,
            c_inst: 1.30,
            c_mem: 22,
            tlb_entries: 1024,
            tlb_scale: 256,
        }
    }

    /// Fraction of a working set whose TLB entries get thrashed by a
    /// context transition on this machine (0 on large-TLB parts).
    pub fn thrash_factor(&self) -> f64 {
        (1.0 - self.tlb_entries as f64 / self.tlb_scale as f64).max(0.0)
    }
}

/// Which hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypKind {
    /// Unmodified KVM.
    Kvm,
    /// The verified, retrofitted KVM.
    SeKvm,
}

impl HypKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            HypKind::Kvm => "KVM",
            HypKind::SeKvm => "SeKVM",
        }
    }
}

/// Linux kernel version of the host/hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVersion {
    /// Linux 4.18 (original SeKVM; 4-level stage-2 tables).
    V4_18,
    /// Linux 5.4 (port with 3-level stage-2 support, §5.6).
    V5_4,
}

impl KernelVersion {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelVersion::V4_18 => "4.18",
            KernelVersion::V5_4 => "5.4",
        }
    }
}

/// A hypervisor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypConfig {
    /// KVM or SeKVM.
    pub kind: HypKind,
    /// Kernel version.
    pub kernel: KernelVersion,
}

impl HypConfig {
    /// Builds a configuration.
    pub fn new(kind: HypKind, kernel: KernelVersion) -> Self {
        HypConfig { kind, kernel }
    }

    /// Stage-2 page-table levels in use.
    ///
    /// SeKVM on 4.18 used 4-level tables; the later ports add verified
    /// 3-level support, "useful for improving performance on Arm CPUs
    /// with smaller TLBs" (§5.6).
    pub fn s2_levels(&self) -> u32 {
        match (self.kind, self.kernel) {
            (HypKind::SeKvm, KernelVersion::V4_18) => 4,
            (HypKind::SeKvm, KernelVersion::V5_4) => 3,
            (HypKind::Kvm, _) => 4,
        }
    }

    /// Does KServ (the host) run under 4 KB stage-2 mappings?
    ///
    /// "The current implementation maps regular 4 KB pages in KServ's
    /// stage 2 page table so microbenchmark workloads that spend most of
    /// their time running in KServ require more TLB entries" (§6).
    pub fn kserv_4k_stage2(&self) -> bool {
        self.kind == HypKind::SeKvm
    }

    /// Minor instruction-count factor per kernel version (newer kernels
    /// do slightly more work on the exit paths).
    pub fn version_factor(&self) -> f64 {
        match self.kernel {
            KernelVersion::V4_18 => 1.0,
            KernelVersion::V5_4 => 1.03,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m400_has_tiny_tlb() {
        assert!(HwConfig::m400().tlb_entries < HwConfig::seattle().tlb_entries);
        assert!(HwConfig::m400().thrash_factor() > 0.5);
        assert_eq!(HwConfig::seattle().thrash_factor(), 0.0);
    }

    #[test]
    fn sekvm_levels_depend_on_kernel() {
        assert_eq!(
            HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18).s2_levels(),
            4
        );
        assert_eq!(
            HypConfig::new(HypKind::SeKvm, KernelVersion::V5_4).s2_levels(),
            3
        );
        assert_eq!(
            HypConfig::new(HypKind::Kvm, KernelVersion::V4_18).s2_levels(),
            4
        );
    }

    #[test]
    fn only_sekvm_maps_kserv_4k() {
        assert!(HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18).kserv_4k_stage2());
        assert!(!HypConfig::new(HypKind::Kvm, KernelVersion::V5_4).kserv_4k_stage2());
    }
}
