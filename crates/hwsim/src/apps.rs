//! Figure 8: application benchmarks normalized to native execution.
//!
//! Each workload is modelled as a transaction with a native cost (compute
//! plus I/O wait, which a hypervisor does not change) and a mix of
//! hypervisor operations per transaction (hypercalls, kernel-level I/O
//! exits, userspace-emulation exits, virtual IPIs) — the structure behind
//! Table 4's five applications. Normalized performance is
//! `native / (native + overhead)`.

use crate::config::{HwConfig, HypConfig};
use crate::cost::{profiles, CostModel};

/// One application workload's per-transaction profile.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name (Table 4).
    pub name: &'static str,
    /// Native cycles per transaction (compute + I/O wait).
    pub native_cycles: f64,
    /// Hypercalls per transaction.
    pub hypercalls: f64,
    /// Kernel-level I/O exits per transaction (vhost notifications,
    /// virtual interrupt-controller accesses).
    pub io_kernel: f64,
    /// Userspace-emulation exits per transaction.
    pub io_user: f64,
    /// Virtual IPIs per transaction.
    pub ipis: f64,
    /// Fraction of a core one instance keeps busy (for Figure 9).
    pub cpu_util: f64,
    /// Fraction of the shared I/O device (NIC/SSD) one instance uses at
    /// full speed (for Figure 9).
    pub io_demand: f64,
}

/// The five application benchmarks of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Hackbench",
            native_cycles: 600_000.0,
            hypercalls: 2.0,
            io_kernel: 6.0,
            io_user: 0.0,
            ipis: 4.0,
            cpu_util: 0.95,
            io_demand: 0.0,
        },
        Workload {
            name: "Kernbench",
            native_cycles: 5_000_000.0,
            hypercalls: 4.0,
            io_kernel: 10.0,
            io_user: 0.0,
            ipis: 4.0,
            cpu_util: 0.95,
            io_demand: 0.03,
        },
        Workload {
            name: "Apache",
            native_cycles: 900_000.0,
            hypercalls: 2.0,
            io_kernel: 8.0,
            io_user: 0.5,
            ipis: 4.0,
            cpu_util: 0.50,
            io_demand: 0.25,
        },
        Workload {
            name: "MongoDB",
            native_cycles: 1_200_000.0,
            hypercalls: 2.0,
            io_kernel: 8.0,
            io_user: 0.3,
            ipis: 4.0,
            cpu_util: 0.60,
            io_demand: 0.15,
        },
        Workload {
            name: "Redis",
            native_cycles: 700_000.0,
            hypercalls: 1.0,
            io_kernel: 6.0,
            io_user: 0.2,
            ipis: 3.0,
            cpu_util: 0.50,
            io_demand: 0.20,
        },
    ]
}

/// One simulated Figure 8 bar.
#[derive(Debug, Clone, Copy)]
pub struct AppResult {
    /// Workload name.
    pub workload: &'static str,
    /// Performance normalized to native (1.0 = native speed).
    pub normalized: f64,
}

/// Per-transaction hypervisor overhead in cycles.
pub fn overhead_cycles(hw: HwConfig, hyp: HypConfig, w: &Workload) -> f64 {
    let m = CostModel::new(hw, hyp);
    w.hypercalls * m.op_cycles(&profiles::hypercall()) as f64
        + w.io_kernel * m.op_cycles(&profiles::io_kernel()) as f64
        + w.io_user * m.op_cycles(&profiles::io_user()) as f64
        + w.ipis * m.op_cycles(&profiles::virtual_ipi()) as f64
}

/// Simulates one Figure 8 bar (the default 2-vCPU VM configuration).
///
/// # Examples
///
/// ```
/// use vrm_hwsim::{simulate_app, workloads, HwConfig, HypConfig, HypKind, KernelVersion};
///
/// let apache = workloads().into_iter().find(|w| w.name == "Apache").unwrap();
/// let kvm = simulate_app(
///     HwConfig::m400(),
///     HypConfig::new(HypKind::Kvm, KernelVersion::V4_18),
///     &apache,
/// );
/// let sekvm = simulate_app(
///     HwConfig::m400(),
///     HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18),
///     &apache,
/// );
/// assert!(sekvm.normalized / kvm.normalized >= 0.90); // within 10% (Fig. 8)
/// ```
pub fn simulate_app(hw: HwConfig, hyp: HypConfig, w: &Workload) -> AppResult {
    simulate_app_with_vcpus(hw, hyp, w, 2)
}

/// [`simulate_app`] for an SMP VM with `vcpus` virtual CPUs.
///
/// More vCPUs mean more cross-vCPU IPC (virtual IPIs scale with the
/// number of peer vCPUs) but also more parallelism for the native work;
/// the *relative* KVM-vs-SeKVM picture barely moves — the paper's "no
/// substantial change in relative performance when running 2 CPU VMs
/// versus 4 CPU VMs".
pub fn simulate_app_with_vcpus(
    hw: HwConfig,
    hyp: HypConfig,
    w: &Workload,
    vcpus: u32,
) -> AppResult {
    assert!(vcpus >= 1);
    let mut scaled = *w;
    // IPC spreads across more vCPUs: per-transaction IPIs grow
    // sub-linearly with the vCPU count.
    scaled.ipis = w.ipis * (vcpus as f64 / 2.0).sqrt();
    let ovh = overhead_cycles(hw, hyp, &scaled);
    AppResult {
        workload: w.name,
        normalized: w.native_cycles / (w.native_cycles + ovh),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HypKind, KernelVersion};

    fn all_configs() -> Vec<(HwConfig, HypConfig)> {
        let mut out = Vec::new();
        for hw in [HwConfig::m400(), HwConfig::seattle()] {
            for kind in [HypKind::Kvm, HypKind::SeKvm] {
                for kernel in [KernelVersion::V4_18, KernelVersion::V5_4] {
                    out.push((hw, HypConfig::new(kind, kernel)));
                }
            }
        }
        out
    }

    #[test]
    fn normalized_perf_is_sane() {
        for (hw, hyp) in all_configs() {
            for w in workloads() {
                let r = simulate_app(hw, hyp, &w);
                assert!(
                    r.normalized > 0.5 && r.normalized < 1.0,
                    "{} {} {}: {}",
                    hw.name,
                    hyp.kind.name(),
                    w.name,
                    r.normalized
                );
            }
        }
    }

    #[test]
    fn sekvm_within_ten_percent_of_kvm() {
        // The paper's headline Figure 8 result.
        for hw in [HwConfig::m400(), HwConfig::seattle()] {
            for kernel in [KernelVersion::V4_18, KernelVersion::V5_4] {
                for w in workloads() {
                    let kvm = simulate_app(hw, HypConfig::new(HypKind::Kvm, kernel), &w);
                    let sek = simulate_app(hw, HypConfig::new(HypKind::SeKvm, kernel), &w);
                    let ratio = sek.normalized / kvm.normalized;
                    assert!(
                        ratio >= 0.90,
                        "{} {} {}: SeKVM at {:.1}% of KVM",
                        hw.name,
                        kernel.name(),
                        w.name,
                        ratio * 100.0
                    );
                    assert!(ratio <= 1.0);
                }
            }
        }
    }

    #[test]
    fn vcpu_count_does_not_change_relative_performance() {
        // Figure 8's 2- vs 4-CPU VM comparison: the SeKVM/KVM ratio moves
        // by well under 2% between the configurations.
        for hw in [HwConfig::m400(), HwConfig::seattle()] {
            for w in workloads() {
                let ratio = |vcpus| {
                    let kvm = simulate_app_with_vcpus(
                        hw,
                        HypConfig::new(HypKind::Kvm, KernelVersion::V4_18),
                        &w,
                        vcpus,
                    )
                    .normalized;
                    let sek = simulate_app_with_vcpus(
                        hw,
                        HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18),
                        &w,
                        vcpus,
                    )
                    .normalized;
                    sek / kvm
                };
                let drift = (ratio(2) - ratio(4)).abs();
                assert!(drift < 0.02, "{} {}: drift {drift:.4}", hw.name, w.name);
            }
        }
    }

    #[test]
    fn compute_bound_beats_io_bound() {
        // Kernbench (compute) suffers least; exit-heavy workloads more.
        for (hw, hyp) in all_configs() {
            let by_name = |n: &str| {
                let w = workloads().into_iter().find(|w| w.name == n).unwrap();
                simulate_app(hw, hyp, &w).normalized
            };
            assert!(by_name("Kernbench") > by_name("Apache"));
            assert!(by_name("Kernbench") > by_name("Hackbench"));
        }
    }
}
