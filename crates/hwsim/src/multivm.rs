//! Figure 9: multi-VM scalability (1–32 concurrent VMs on the m400).
//!
//! Per-instance performance normalized to one native instance. Three
//! effects compose:
//!
//! * CPU oversubscription — `n` VMs × 2 vCPUs × per-VM utilization share
//!   the 8 physical cores;
//! * shared-I/O contention — the single 10 GbE NIC / SSD saturates when
//!   the aggregate demand exceeds capacity;
//! * scheduling/lock overhead — grows slowly with `n`; SeKVM's ticket
//!   locks add a small extra term that stays well within the paper's
//!   ≤10%-of-KVM envelope even at 32 VMs.

use crate::apps::{simulate_app, Workload};
use crate::config::{HwConfig, HypConfig, HypKind};

/// vCPUs per VM in the Figure 9 experiment (m400 configuration).
pub const VCPUS_PER_VM: u32 = 2;

/// Per-instance performance normalized to one native instance.
pub fn simulate_multivm(hw: HwConfig, hyp: HypConfig, w: &Workload, n: u32) -> f64 {
    assert!(n >= 1);
    let single = simulate_app(hw, hyp, w).normalized;
    // CPU oversubscription.
    let demand = n as f64 * VCPUS_PER_VM as f64 * w.cpu_util;
    let cpu_scale = (hw.cores as f64 / demand).min(1.0);
    // Shared-I/O saturation.
    let io_total = n as f64 * w.io_demand;
    let io_scale = if io_total > 1.0 { 1.0 / io_total } else { 1.0 };
    // Scheduling and synchronization overhead (log-ish in n).
    let lg = (n as f64).log2();
    let sched_tax = 0.006 * lg;
    let lock_tax = match hyp.kind {
        HypKind::Kvm => 0.004 * lg,
        HypKind::SeKvm => 0.006 * lg,
    };
    single * cpu_scale.min(io_scale) * (1.0 - sched_tax - lock_tax).max(0.0)
}

/// The VM counts plotted in Figure 9.
pub const VM_COUNTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::workloads;
    use crate::config::KernelVersion;

    fn cfgs() -> (HypConfig, HypConfig) {
        (
            HypConfig::new(HypKind::Kvm, KernelVersion::V4_18),
            HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18),
        )
    }

    #[test]
    fn scaling_is_monotone_nonincreasing() {
        let hw = HwConfig::m400();
        let (kvm, sekvm) = cfgs();
        for hyp in [kvm, sekvm] {
            for w in workloads() {
                let mut prev = f64::INFINITY;
                for n in VM_COUNTS {
                    let p = simulate_multivm(hw, hyp, &w, n);
                    assert!(p <= prev + 1e-12, "{}: n={n} rose", w.name);
                    assert!(p > 0.0);
                    prev = p;
                }
            }
        }
    }

    #[test]
    fn n_equals_one_matches_single_vm_modulo_no_contention() {
        let hw = HwConfig::m400();
        let (kvm, _) = cfgs();
        for w in workloads() {
            let single = simulate_app(hw, kvm, &w).normalized;
            let multi = simulate_multivm(hw, kvm, &w, 1);
            assert!((single - multi).abs() < 1e-9, "{}", w.name);
        }
    }

    #[test]
    fn sekvm_tracks_kvm_out_to_32_vms() {
        // The Figure 9 claim: similar slowdown for both hypervisors; SeKVM
        // no worse than 10% of KVM even at 32 VMs.
        let hw = HwConfig::m400();
        let (kvm, sekvm) = cfgs();
        for w in workloads() {
            for n in VM_COUNTS {
                let k = simulate_multivm(hw, kvm, &w, n);
                let s = simulate_multivm(hw, sekvm, &w, n);
                let ratio = s / k;
                assert!(
                    (0.90..=1.0).contains(&ratio),
                    "{} n={n}: SeKVM at {:.1}% of KVM",
                    w.name,
                    ratio * 100.0
                );
            }
        }
    }

    #[test]
    fn cpu_bound_workloads_fall_past_four_vms() {
        // 8 cores / 2 vCPUs: >4 busy VMs oversubscribe the machine.
        let hw = HwConfig::m400();
        let (kvm, _) = cfgs();
        let hack = workloads()
            .into_iter()
            .find(|w| w.name == "Hackbench")
            .unwrap();
        let p4 = simulate_multivm(hw, kvm, &hack, 4);
        let p8 = simulate_multivm(hw, kvm, &hack, 8);
        let p32 = simulate_multivm(hw, kvm, &hack, 32);
        assert!(p8 < 0.7 * p4, "oversubscription should bite: {p4} {p8}");
        assert!(p32 < p8);
    }
}
