//! Discrete-event multi-VM simulation: an independent cross-check of the
//! closed-form Figure 9 model in [`multivm`](crate::multivm).
//!
//! Instead of the analytic `min(cpu_scale, io_scale)` formula, this module
//! actually schedules `n` VMs × 2 vCPUs over the 8 physical cores in
//! discrete ticks: each vCPU alternates compute bursts and I/O waits
//! according to its workload's `cpu_util`/`io_demand`, cores run at most
//! one vCPU per tick, and the shared I/O device serves a bounded number of
//! requests per tick. Per-instance throughput normalized to one native
//! instance falls out of completed work.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::apps::{simulate_app, Workload};
use crate::config::{HwConfig, HypConfig};
use crate::multivm::VCPUS_PER_VM;

/// One vCPU's activity state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcpuState {
    /// Wants a core for this many more ticks of compute.
    Computing(u32),
    /// Waiting for its I/O request to be served.
    WaitingIo,
    /// Idle until re-dispatched (thinking between bursts).
    Idle(u32),
}

/// Simulates `ticks` scheduler ticks and returns per-instance performance
/// normalized to one native instance (comparable to
/// [`simulate_multivm`](crate::multivm::simulate_multivm)).
pub fn simulate_multivm_discrete(
    hw: HwConfig,
    hyp: HypConfig,
    w: &Workload,
    n: u32,
    ticks: u32,
    seed: u64,
) -> f64 {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let nvcpus = (n * VCPUS_PER_VM) as usize;
    // Burst lengths chosen so the duty cycle matches cpu_util: a vCPU
    // computes `burst` ticks then idles/waits the rest of its period.
    let period = 20u32;
    let burst = ((period as f64) * w.cpu_util).round().max(1.0) as u32;
    let mut vcpus: Vec<VcpuState> = (0..nvcpus)
        .map(|_| VcpuState::Idle(rng.gen_range(0..period / 2)))
        .collect();
    // Shared I/O device: served requests per tick such that one instance
    // at full speed consumes `io_demand` of it.
    let io_per_tick = 4.0f64; // device capacity in requests/tick
    let mut io_queue: Vec<usize> = Vec::new();
    let mut work_done = vec![0u64; nvcpus];
    let cores = hw.cores as usize;

    for _ in 0..ticks {
        // Serve I/O.
        let served = io_per_tick as usize;
        for _ in 0..served.min(io_queue.len()) {
            let v = io_queue.remove(0);
            vcpus[v] = VcpuState::Computing(burst);
        }
        // Dispatch runnable vCPUs onto cores (round-robin fairness via
        // random start).
        let start = rng.gen_range(0..nvcpus);
        let mut used = 0;
        for k in 0..nvcpus {
            let v = (start + k) % nvcpus;
            match vcpus[v] {
                VcpuState::Computing(left) if used < cores => {
                    used += 1;
                    work_done[v] += 1;
                    if left <= 1 {
                        // Burst complete: issue I/O or idle.
                        let io_prob = w.io_demand * io_per_tick / burst as f64;
                        if rng.gen_bool(io_prob.clamp(0.0, 1.0)) {
                            vcpus[v] = VcpuState::WaitingIo;
                            io_queue.push(v);
                        } else {
                            vcpus[v] = VcpuState::Idle(period - burst);
                        }
                    } else {
                        vcpus[v] = VcpuState::Computing(left - 1);
                    }
                }
                VcpuState::Idle(left) => {
                    vcpus[v] = if left <= 1 {
                        VcpuState::Computing(burst)
                    } else {
                        VcpuState::Idle(left - 1)
                    };
                }
                _ => {}
            }
        }
    }
    // One native instance would complete `burst/period` of its demand per
    // vCPU tick; per-instance relative throughput:
    let total: u64 = work_done.iter().sum();
    let per_instance = total as f64 / n as f64;
    let ideal_per_instance = VCPUS_PER_VM as f64 * ticks as f64 * w.cpu_util;
    let sched_ratio = (per_instance / ideal_per_instance).min(1.0);
    // Compose with the single-VM virtualization factor.
    sched_ratio * simulate_app(hw, hyp, w).normalized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::workloads;
    use crate::config::{HypKind, KernelVersion};
    use crate::multivm::{simulate_multivm, VM_COUNTS};

    #[test]
    fn discrete_and_closed_form_agree_on_shape() {
        let hw = HwConfig::m400();
        let hyp = HypConfig::new(HypKind::Kvm, KernelVersion::V4_18);
        for w in workloads() {
            let mut prev = f64::INFINITY;
            for n in VM_COUNTS {
                let d = simulate_multivm_discrete(hw, hyp, &w, n, 4000, 7);
                // Monotone non-increasing (within simulation noise).
                assert!(d <= prev * 1.05, "{} n={n}: {d} after {prev}", w.name);
                prev = d;
                // Within a factor of the closed-form (coarse agreement).
                let c = simulate_multivm(hw, hyp, &w, n);
                let ratio = d / c;
                assert!(
                    (0.4..2.5).contains(&ratio),
                    "{} n={n}: discrete {d:.3} vs closed-form {c:.3}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn oversubscription_kneels_past_four_vms() {
        let hw = HwConfig::m400();
        let hyp = HypConfig::new(HypKind::Kvm, KernelVersion::V4_18);
        let hack = workloads()
            .into_iter()
            .find(|w| w.name == "Hackbench")
            .unwrap();
        let p4 = simulate_multivm_discrete(hw, hyp, &hack, 4, 4000, 3);
        let p16 = simulate_multivm_discrete(hw, hyp, &hack, 16, 4000, 3);
        assert!(
            p16 < 0.5 * p4,
            "16 busy VMs on 8 cores must clearly oversubscribe: {p4:.3} -> {p16:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let hw = HwConfig::m400();
        let hyp = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
        let w = workloads()[0];
        let a = simulate_multivm_discrete(hw, hyp, &w, 8, 2000, 5);
        let b = simulate_multivm_discrete(hw, hyp, &w, 8, 2000, 5);
        assert_eq!(a, b);
    }
}
