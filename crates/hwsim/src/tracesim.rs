//! Trace-driven TLB simulation: an independent cross-check of the
//! analytic TLB-pressure term in [`cost`](crate::cost).
//!
//! The analytic model charges `thrash_factor × pressure × ws` misses per
//! exit. Here we instead *simulate* the exit: a synthetic access trace
//! over the handler's working set runs through the real LRU TLB model
//! from `vrm-mmu`, with SeKVM's 4 KB KServ stage-2 mappings modelled as
//! each page consuming two TLB entries (stage-1 + combined stage-2),
//! versus one under KVM's huge-page backing. The tests assert the two
//! models agree on the qualitative structure (who thrashes, where the
//! capacity knee is).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use vrm_mmu::tlb::Tlb;

use crate::config::{HwConfig, HypConfig};
use crate::cost::CostModel;

/// Result of simulating one hypervisor exit's handler execution.
#[derive(Debug, Clone, Copy)]
pub struct TraceSimResult {
    /// Total translations requested.
    pub accesses: u64,
    /// TLB misses.
    pub misses: u64,
    /// Miss cycles charged (misses × nested-walk cost).
    pub cycles: u64,
}

impl TraceSimResult {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Simulates one exit: the handler touches `ws_pages` pages
/// (`accesses_per_page` references each, with a random reference pattern)
/// starting from a TLB filled with unrelated (guest) translations.
pub fn simulate_exit_trace(
    hw: HwConfig,
    hyp: HypConfig,
    ws_pages: u64,
    accesses_per_page: u64,
    seed: u64,
) -> TraceSimResult {
    let mut rng = StdRng::seed_from_u64(seed);
    // SeKVM's 4 KB stage-2 mappings double the entries a host page needs.
    let slots_per_page = if hyp.kserv_4k_stage2() { 2 } else { 1 };
    let mut tlb = Tlb::new(hw.tlb_entries.max(1) as usize);
    // Warm the TLB with guest translations (what the VM was using).
    for g in 0..hw.tlb_entries {
        tlb.fill(0x8000_0000 + g, 0x1000 + g);
    }
    let mut accesses = 0u64;
    let mut misses = 0u64;
    let touch = |tlb: &mut Tlb, page: u64, misses: &mut u64, accesses: &mut u64| {
        for slot in 0..slots_per_page {
            let vpn = page * slots_per_page + slot;
            *accesses += 1;
            if tlb.lookup(vpn).is_none() {
                *misses += 1;
                tlb.fill(vpn, 0x2000 + vpn);
            }
        }
    };
    // First pass: sequential walk over the working set.
    for page in 0..ws_pages {
        touch(&mut tlb, page, &mut misses, &mut accesses);
    }
    // Re-references with temporal locality.
    let rerefs = ws_pages * accesses_per_page.saturating_sub(1);
    for _ in 0..rerefs {
        let page = rng.gen_range(0..ws_pages.max(1));
        touch(&mut tlb, page, &mut misses, &mut accesses);
    }
    let walk = CostModel::new(hw, hyp).nested_walk_cycles();
    TraceSimResult {
        accesses,
        misses,
        cycles: misses * walk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HypKind, KernelVersion};

    fn res(hw: HwConfig, kind: HypKind, ws: u64) -> TraceSimResult {
        simulate_exit_trace(hw, HypConfig::new(kind, KernelVersion::V4_18), ws, 4, 42)
    }

    #[test]
    fn sekvm_misses_more_than_kvm_on_m400() {
        let hw = HwConfig::m400();
        let kvm = res(hw, HypKind::Kvm, 24);
        let sekvm = res(hw, HypKind::SeKvm, 24);
        assert!(
            sekvm.misses > kvm.misses,
            "sekvm {} vs kvm {}",
            sekvm.misses,
            kvm.misses
        );
        assert!(sekvm.cycles > kvm.cycles);
    }

    #[test]
    fn large_tlb_absorbs_the_working_set() {
        // On Seattle-class capacity, re-references hit: miss count is just
        // the compulsory first-touch fills.
        let hw = HwConfig::seattle();
        let r = res(hw, HypKind::SeKvm, 24);
        assert_eq!(r.misses, 24 * 2, "only compulsory misses: {r:?}");
        // On the m400 a working set exceeding the 48-entry TLB (32 pages
        // x 2 slots under SeKVM) keeps missing beyond the compulsory
        // fills.
        let m = res(HwConfig::m400(), HypKind::SeKvm, 32);
        assert!(m.misses > 32 * 2, "{m:?}");
    }

    #[test]
    fn trace_sim_matches_analytic_shape() {
        // The analytic thrash term and the trace simulation must agree on
        // the capacity knee: grow the TLB and watch the SeKVM/KVM extra
        // cycles collapse.
        let mut prev_extra = u64::MAX;
        for tlb in [32u64, 64, 128, 256, 1024] {
            let hw = HwConfig {
                tlb_entries: tlb,
                ..HwConfig::m400()
            };
            let kvm = res(hw, HypKind::Kvm, 24);
            let sekvm = res(hw, HypKind::SeKvm, 24);
            let extra = sekvm.cycles.saturating_sub(kvm.cycles);
            assert!(
                extra <= prev_extra,
                "extra cycles should not grow with capacity"
            );
            prev_extra = extra;
        }
        // And the analytic model's verdict for the same sweep.
        let analytic = |tlb| {
            let hw = HwConfig {
                tlb_entries: tlb,
                ..HwConfig::m400()
            };
            CostModel::new(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18))
                .thrash_misses(24)
        };
        assert!(analytic(32) > analytic(256));
    }
}
