//! The cost model: cycles for hypervisor primitives.
//!
//! Costs are compositional: exception transitions, instruction work, and
//! TLB refill pressure. A *transition profile* describes one hypervisor
//! operation as (number of EL transitions, instructions executed in the
//! hypervisor/host, working-set pages touched in host context, extra
//! instructions SeKVM's trusted core adds, KCore working-set pages).
//!
//! The TLB term is where the two machines diverge: entering host (KServ)
//! context replaces translations; on a small-TLB part a fraction
//! [`HwConfig::thrash_factor`] of the working set must be re-walked, and
//! SeKVM doubles the pressure because KServ runs under 4 KB stage-2
//! mappings (each host page needs its own combined-stage entry instead of
//! being covered by a huge-page mapping).

use crate::config::{HwConfig, HypConfig};

/// The composite cost model for one (hardware, hypervisor) pair.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Hardware.
    pub hw: HwConfig,
    /// Hypervisor.
    pub hyp: HypConfig,
}

/// One hypervisor operation's structural profile.
#[derive(Debug, Clone, Copy)]
pub struct OpProfile {
    /// EL transitions (guest↔hyp↔host...), each costing `c_exc`.
    pub transitions: u64,
    /// Instructions executed on the common (KVM) path.
    pub insts: u64,
    /// Host-context working set in pages (TLB pressure term).
    pub ws_pages: u64,
    /// Extra instructions the SeKVM path adds (full VM-state
    /// save/restore in KCore, sanitization, s2page checks).
    pub sekvm_extra_insts: u64,
    /// Extra KCore working-set pages SeKVM touches.
    pub sekvm_extra_ws: u64,
}

impl CostModel {
    /// Builds the model.
    pub fn new(hw: HwConfig, hyp: HypConfig) -> Self {
        CostModel { hw, hyp }
    }

    /// Cost in cycles of one TLB refill: a stage-1 walk where each level
    /// (plus the final access) is itself translated by the stage-2 walk.
    pub fn nested_walk_cycles(&self) -> u64 {
        let s1 = 4u64;
        let s2 = self.hyp.s2_levels() as u64;
        // (s1 levels + final) stage-2 translations of s2 refs each, plus
        // the s1 refs themselves — approximated linearly.
        (s1 + s2 + 2) * self.hw.c_mem
    }

    /// TLB misses induced by a context transition touching `ws` pages.
    ///
    /// Stock KVM backs the host with huge-page stage-2 mappings, so only
    /// a small fraction of the working set costs a refill; SeKVM's 4 KB
    /// KServ mappings make nearly every page (stage-1 and stage-2 entry)
    /// contend for TLB capacity.
    pub fn thrash_misses(&self, ws: u64) -> f64 {
        let pressure = if self.hyp.kserv_4k_stage2() {
            1.3
        } else {
            0.35
        };
        ws as f64 * pressure * self.hw.thrash_factor()
    }

    /// Total cycles for an operation profile.
    pub fn op_cycles(&self, p: &OpProfile) -> u64 {
        let vf = self.hyp.version_factor();
        let mut cycles =
            p.transitions as f64 * self.hw.c_exc as f64 + p.insts as f64 * vf * self.hw.c_inst;
        // Baseline TLB pressure of entering host context at all.
        cycles += self.thrash_misses(p.ws_pages) * self.nested_walk_cycles() as f64;
        if self.hyp.kserv_4k_stage2() {
            // SeKVM extra: KCore work + its own working set.
            cycles += p.sekvm_extra_insts as f64 * vf * self.hw.c_inst;
            cycles += self.thrash_misses(p.sekvm_extra_ws) * self.nested_walk_cycles() as f64;
            // Seattle-class machines still pay the KCore instruction cost
            // plus a fixed stage-2-switch overhead.
            cycles += 2.0 * self.hw.c_exc as f64 * 0.35;
        }
        cycles as u64
    }
}

/// Microbenchmark op profiles (Table 2's four operations).
pub mod profiles {
    use super::OpProfile;

    /// Hypercall: guest → hypervisor → guest, no work.
    pub fn hypercall() -> OpProfile {
        OpProfile {
            transitions: 2,
            insts: 1150,
            ws_pages: 0,
            sekvm_extra_insts: 450,
            sekvm_extra_ws: 7,
        }
    }

    /// I/O Kernel: trap to the in-kernel emulated interrupt controller.
    pub fn io_kernel() -> OpProfile {
        OpProfile {
            transitions: 2,
            insts: 1900,
            ws_pages: 4,
            sekvm_extra_insts: 800,
            sekvm_extra_ws: 9,
        }
    }

    /// I/O User: trap out to QEMU's emulated UART and back.
    pub fn io_user() -> OpProfile {
        OpProfile {
            transitions: 6,
            insts: 4200,
            ws_pages: 18,
            // The QEMU round trip already thrashes the TLB wholesale, so
            // KCore's incremental footprint is small here.
            sekvm_extra_insts: 1600,
            sekvm_extra_ws: 3,
        }
    }

    /// Virtual IPI between two vCPUs on different cores.
    pub fn virtual_ipi() -> OpProfile {
        OpProfile {
            transitions: 4,
            insts: 4400,
            ws_pages: 10,
            sekvm_extra_insts: 1500,
            sekvm_extra_ws: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HypKind, KernelVersion};

    fn model(hw: HwConfig, kind: HypKind) -> CostModel {
        CostModel::new(hw, HypConfig::new(kind, KernelVersion::V4_18))
    }

    #[test]
    fn sekvm_costs_more_than_kvm_everywhere() {
        for hw in [HwConfig::m400(), HwConfig::seattle()] {
            for p in [
                profiles::hypercall(),
                profiles::io_kernel(),
                profiles::io_user(),
                profiles::virtual_ipi(),
            ] {
                let kvm = model(hw, HypKind::Kvm).op_cycles(&p);
                let sekvm = model(hw, HypKind::SeKvm).op_cycles(&p);
                assert!(sekvm > kvm, "{}: {sekvm} <= {kvm}", hw.name);
            }
        }
    }

    #[test]
    fn m400_overhead_ratio_exceeds_seattle() {
        // The paper's central microbenchmark observation: the tiny-TLB
        // m400 amplifies SeKVM's relative overhead.
        for p in [
            profiles::hypercall(),
            profiles::io_kernel(),
            profiles::io_user(),
            profiles::virtual_ipi(),
        ] {
            let ratio = |hw: HwConfig| {
                model(hw, HypKind::SeKvm).op_cycles(&p) as f64
                    / model(hw, HypKind::Kvm).op_cycles(&p) as f64
            };
            assert!(
                ratio(HwConfig::m400()) > ratio(HwConfig::seattle()),
                "m400 ratio should exceed Seattle"
            );
        }
    }

    #[test]
    fn three_level_tables_cheaper_on_walks() {
        let hw = HwConfig::m400();
        let four = CostModel::new(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18));
        let three = CostModel::new(hw, HypConfig::new(HypKind::SeKvm, KernelVersion::V5_4));
        assert!(three.nested_walk_cycles() < four.nested_walk_cycles());
    }
}
