//! Table 3: microbenchmark cycle counts.

use crate::config::{HwConfig, HypConfig};
use crate::cost::{profiles, CostModel};

/// Simulated Table 3 row set for one (hardware, hypervisor) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroResults {
    /// Hypercall round trip.
    pub hypercall: u64,
    /// In-kernel device emulation trap.
    pub io_kernel: u64,
    /// Userspace (QEMU) device emulation trap.
    pub io_user: u64,
    /// Virtual IPI delivery.
    pub virtual_ipi: u64,
}

impl MicroResults {
    /// The four values in Table 3 row order.
    pub fn rows(&self) -> [(&'static str, u64); 4] {
        [
            ("Hypercall", self.hypercall),
            ("I/O Kernel", self.io_kernel),
            ("I/O User", self.io_user),
            ("Virtual IPI", self.virtual_ipi),
        ]
    }
}

/// Runs the four microbenchmarks on the model.
pub fn simulate_micro(hw: HwConfig, hyp: HypConfig) -> MicroResults {
    let m = CostModel::new(hw, hyp);
    MicroResults {
        hypercall: m.op_cycles(&profiles::hypercall()),
        io_kernel: m.op_cycles(&profiles::io_kernel()),
        io_user: m.op_cycles(&profiles::io_user()),
        virtual_ipi: m.op_cycles(&profiles::virtual_ipi()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HypKind, KernelVersion};

    fn micro(hw: HwConfig, kind: HypKind) -> MicroResults {
        simulate_micro(hw, HypConfig::new(kind, KernelVersion::V4_18))
    }

    /// Paper Table 3 values for reference bands.
    const PAPER: [(&str, [u64; 4]); 4] = [
        ("m400-kvm", [2275, 3144, 7864, 7915]),
        ("m400-sekvm", [4695, 7235, 15501, 13900]),
        ("seattle-kvm", [2896, 3831, 9288, 8816]),
        ("seattle-sekvm", [3720, 4864, 10903, 10699]),
    ];

    fn as_array(m: MicroResults) -> [u64; 4] {
        [m.hypercall, m.io_kernel, m.io_user, m.virtual_ipi]
    }

    #[test]
    fn within_forty_percent_of_paper() {
        // The substrate is a simulator, not the authors' silicon: we
        // require the magnitudes to be in the right ballpark (±40%), and
        // the *ratios* to be much tighter (next test).
        let sims = [
            as_array(micro(HwConfig::m400(), HypKind::Kvm)),
            as_array(micro(HwConfig::m400(), HypKind::SeKvm)),
            as_array(micro(HwConfig::seattle(), HypKind::Kvm)),
            as_array(micro(HwConfig::seattle(), HypKind::SeKvm)),
        ];
        for ((name, paper), sim) in PAPER.iter().zip(sims.iter()) {
            for (p, s) in paper.iter().zip(sim.iter()) {
                let rel = (*s as f64 - *p as f64).abs() / *p as f64;
                assert!(rel < 0.40, "{name}: paper {p} vs simulated {s} ({rel:.0}%)");
            }
        }
    }

    #[test]
    fn overhead_ratios_match_paper_shape() {
        // m400 ratios (paper: 2.06, 2.30, 1.97, 1.76) land in 1.6..2.6;
        // Seattle ratios (paper: 1.28, 1.27, 1.17, 1.21) land in 1.1..1.45.
        let m400_kvm = as_array(micro(HwConfig::m400(), HypKind::Kvm));
        let m400_sek = as_array(micro(HwConfig::m400(), HypKind::SeKvm));
        let sea_kvm = as_array(micro(HwConfig::seattle(), HypKind::Kvm));
        let sea_sek = as_array(micro(HwConfig::seattle(), HypKind::SeKvm));
        for i in 0..4 {
            let rm = m400_sek[i] as f64 / m400_kvm[i] as f64;
            let rs = sea_sek[i] as f64 / sea_kvm[i] as f64;
            assert!((1.6..2.6).contains(&rm), "m400 ratio[{i}] = {rm:.2}");
            assert!((1.08..1.45).contains(&rs), "seattle ratio[{i}] = {rs:.2}");
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Within each configuration: hypercall < io_kernel < ipi ~ io_user.
        for (hw, kind) in [
            (HwConfig::m400(), HypKind::Kvm),
            (HwConfig::m400(), HypKind::SeKvm),
            (HwConfig::seattle(), HypKind::Kvm),
            (HwConfig::seattle(), HypKind::SeKvm),
        ] {
            let m = micro(hw, kind);
            assert!(m.hypercall < m.io_kernel);
            assert!(m.io_kernel < m.virtual_ipi);
            assert!(m.io_kernel < m.io_user);
        }
    }
}
