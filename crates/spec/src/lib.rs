//! The abstract ownership machine — the refinement spec for the SeKVM
//! model (§5.2–5.3 of the paper).
//!
//! SeKVM's security theorem is *not* proved against the concrete KCore
//! implementation directly. Instead the paper states a small abstract
//! machine — per-principal VA→frame maps, a per-frame owner, a shared
//! bit — proves noninterference of that machine once and for all, and
//! then shows the concrete implementation *refines* it: every concrete
//! transition projects to a legal abstract step (or a stutter). This
//! crate is that abstract machine, reproduced executably:
//!
//! * [`AbsState`] — the abstract state: page ownership ([`AbsPage`]) and
//!   one sparse VA→frame map per principal, nothing else. Lock tickets,
//!   page-table layout, TLBs, map counts and memory *contents* are all
//!   refined away.
//! * [`AbsStep`] — the step relation: `map`, `unmap`, `grant`, `revoke`,
//!   `reclaim` and `walk`, with declassification evidence ([`Claim`])
//!   where the paper's proofs use data oracles (scrubbing, image
//!   authentication).
//! * [`step`] — the legality judgment + transition function.
//! * [`noninterference`] — the security predicate over abstract states,
//!   from which the concrete invariant sweeps in `vrm-sekvm::security`
//!   are re-derived as corollaries.
//! * [`AbsSpace`] — an exploration space over `vrm-explore`, so abstract
//!   programs can be enumerated exhaustively and their state counts
//!   compared against concrete schedule exploration (they are orders of
//!   magnitude smaller — that gap is the point of the abstraction).
//!
//! The projection from the concrete `KCore` and the per-transition label
//! function live in `vrm-sekvm::refine`; this crate deliberately knows
//! nothing about the concrete machine, so the spec cannot be
//! accidentally entangled with the implementation it judges.

#![deny(missing_docs)]

use std::collections::BTreeMap;

use vrm_explore::{Sink, StateSpace};

// --- actors, owners, permissions ------------------------------------

/// A principal that owns translation state: the host (KServ) or a VM.
///
/// The hypervisor itself ([`AbsOwner::Hyp`]) owns frames but has no
/// abstract VA map — its private translation (EL2) is invisible to
/// untrusted principals and is refined away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsActor {
    /// The untrusted host OS (KServ).
    Host,
    /// A guest VM.
    Vm(u32),
}

/// The owner of one physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsOwner {
    /// The hypervisor's private memory: never mappable by any actor.
    Hyp,
    /// The host OS.
    Host,
    /// A guest VM.
    Vm(u32),
}

impl AbsOwner {
    /// The owner an actor's mappings must agree with.
    pub fn of_actor(a: AbsActor) -> AbsOwner {
        match a {
            AbsActor::Host => AbsOwner::Host,
            AbsActor::Vm(v) => AbsOwner::Vm(v),
        }
    }
}

/// Abstract access permissions on a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbsPerms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl AbsPerms {
    /// Read-write-execute.
    pub const RWX: AbsPerms = AbsPerms {
        r: true,
        w: true,
        x: true,
    };
    /// Read-write.
    pub const RW: AbsPerms = AbsPerms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only.
    pub const RO: AbsPerms = AbsPerms {
        r: true,
        w: false,
        x: false,
    };
}

// --- the abstract state ---------------------------------------------

/// Per-frame abstract ownership state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbsPage {
    /// Current owner.
    pub owner: AbsOwner,
    /// Shared with the host (grant/revoke window).
    pub shared: bool,
}

impl AbsPage {
    /// The boot-time state of every non-hypervisor frame.
    pub const DEFAULT: AbsPage = AbsPage {
        owner: AbsOwner::Host,
        shared: false,
    };
}

/// One entry in an actor's VA→frame map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbsMapping {
    /// Target physical frame.
    pub frame: u64,
    /// Access permissions.
    pub perms: AbsPerms,
}

/// The static shape of the abstract machine: how many frames exist and
/// which of them are hypervisor-private. This never changes at runtime,
/// so it is configuration, not state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsUniverse {
    /// Total number of physical frames.
    pub frames: u64,
    /// Half-open frame ranges owned by the hypervisor forever.
    pub hyp: Vec<(u64, u64)>,
}

impl AbsUniverse {
    /// Is the frame hypervisor-private?
    pub fn is_hyp(&self, frame: u64) -> bool {
        self.hyp.iter().any(|&(lo, hi)| frame >= lo && frame < hi)
    }
}

/// The abstract machine state.
///
/// Both page and mapping tables are *sparse*: `pages` holds only frames
/// that deviate from [`AbsPage::DEFAULT`], and empty per-VM maps are
/// dropped. This canonical form is what makes stuttering precise — a
/// concrete transition that only touches refined-away state (locks, VM
/// metadata, memory contents) projects to a bit-identical `AbsState`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AbsState {
    /// Stage-2 translation is enforced for every actor.
    pub translation_on: bool,
    /// DMA goes through hypervisor-controlled translation.
    pub dma_protected: bool,
    /// Frames deviating from [`AbsPage::DEFAULT`] (hyp frames excluded —
    /// they are fixed by the [`AbsUniverse`]).
    pub pages: BTreeMap<u64, AbsPage>,
    /// The host's VA→frame map.
    pub host: BTreeMap<u64, AbsMapping>,
    /// Per-VM VA→frame maps (no empty maps are stored).
    pub vms: BTreeMap<u32, BTreeMap<u64, AbsMapping>>,
    /// Per-device DMA maps with the principal each device serves
    /// (devices with empty maps are not stored).
    pub devs: BTreeMap<u32, (AbsActor, BTreeMap<u64, AbsMapping>)>,
}

impl AbsState {
    /// The boot state: translation on, no mappings, every frame at its
    /// default owner.
    pub fn boot() -> AbsState {
        AbsState {
            translation_on: true,
            dma_protected: true,
            ..Default::default()
        }
    }

    /// The ownership state of a frame (hyp frames are pinned by the
    /// universe and never appear in `pages`).
    pub fn page(&self, uni: &AbsUniverse, frame: u64) -> AbsPage {
        if uni.is_hyp(frame) {
            return AbsPage {
                owner: AbsOwner::Hyp,
                shared: false,
            };
        }
        self.pages.get(&frame).copied().unwrap_or(AbsPage::DEFAULT)
    }

    /// Stores a frame's state, keeping the sparse map canonical.
    pub fn set_page(&mut self, frame: u64, page: AbsPage) {
        if page == AbsPage::DEFAULT {
            self.pages.remove(&frame);
        } else {
            self.pages.insert(frame, page);
        }
    }

    /// An actor's map (empty for actors with no stored map).
    pub fn map_of(&self, who: AbsActor) -> &BTreeMap<u64, AbsMapping> {
        static EMPTY: BTreeMap<u64, AbsMapping> = BTreeMap::new();
        match who {
            AbsActor::Host => &self.host,
            AbsActor::Vm(v) => self.vms.get(&v).unwrap_or(&EMPTY),
        }
    }

    /// Inserts a mapping into an actor's map.
    pub fn insert_mapping(&mut self, who: AbsActor, vpn: u64, m: AbsMapping) {
        match who {
            AbsActor::Host => {
                self.host.insert(vpn, m);
            }
            AbsActor::Vm(v) => {
                self.vms.entry(v).or_default().insert(vpn, m);
            }
        }
    }

    /// Removes a mapping, dropping now-empty per-VM maps to keep the
    /// state canonical.
    pub fn remove_mapping(&mut self, who: AbsActor, vpn: u64) -> Option<AbsMapping> {
        match who {
            AbsActor::Host => self.host.remove(&vpn),
            AbsActor::Vm(v) => {
                let map = self.vms.get_mut(&v)?;
                let removed = map.remove(&vpn);
                if map.is_empty() {
                    self.vms.remove(&v);
                }
                removed
            }
        }
    }

    /// Is the frame the target of *any* mapping (host, VM or device)?
    pub fn mapped_anywhere(&self, frame: u64) -> bool {
        self.host.values().any(|m| m.frame == frame)
            || self
                .vms
                .values()
                .any(|t| t.values().any(|m| m.frame == frame))
            || self
                .devs
                .values()
                .any(|(_, t)| t.values().any(|m| m.frame == frame))
    }
}

// --- the step relation ----------------------------------------------

/// Declassification evidence attached to a [`AbsStep::Map`].
///
/// The paper's noninterference proof masks two information flows with
/// data oracles: freshly donated frames are *scrubbed* before a VM can
/// see them, and VM boot images are *authenticated* before they run. A
/// map step that moves a frame across the host/VM boundary is only
/// legal when it carries the corresponding evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Claim {
    /// The actor already owns (or is entitled to) the frame; no
    /// boundary is crossed.
    Owned,
    /// The frame's contents were zeroed before the mapping appeared.
    Zeroed,
    /// The frame holds an image whose hash was verified against the
    /// value registered before the mapping appeared.
    Authenticated,
}

/// One step of the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsStep {
    /// `who` gains `vpn → frame` with `perms`; donation from the host
    /// to a VM requires declassification evidence in `claim`.
    Map {
        /// Mapping actor.
        who: AbsActor,
        /// Virtual page number.
        vpn: u64,
        /// Target frame.
        frame: u64,
        /// Permissions.
        perms: AbsPerms,
        /// Declassification evidence.
        claim: Claim,
    },
    /// `who` loses its mapping at `vpn`.
    Unmap {
        /// Unmapping actor.
        who: AbsActor,
        /// Virtual page number.
        vpn: u64,
    },
    /// VM `vm` opens a sharing window on a frame it owns.
    Grant {
        /// Granting VM.
        vm: u32,
        /// Shared frame.
        frame: u64,
    },
    /// VM `vm` closes the sharing window (the host must already have
    /// unmapped the frame).
    Revoke {
        /// Revoking VM.
        vm: u32,
        /// Unshared frame.
        frame: u64,
    },
    /// A frame owned by `vm` returns to the host. Legal only when the
    /// frame is mapped nowhere and its contents were scrubbed.
    Reclaim {
        /// Previous owner.
        vm: u32,
        /// Reclaimed frame.
        frame: u64,
        /// Scrub evidence (the data oracle for confidentiality).
        scrubbed: bool,
    },
    /// `who` performs a read (`write = false`) or write through its map
    /// at `vpn`, reaching `frame`. Leaves the state unchanged; legal
    /// only if the mapping exists with sufficient permissions.
    Walk {
        /// Accessing actor.
        who: AbsActor,
        /// Virtual page number.
        vpn: u64,
        /// Frame the access must reach.
        frame: u64,
        /// Whether the access writes.
        write: bool,
    },
}

/// Why a step was illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// The frame does not exist or is hypervisor-private.
    BadFrame(u64),
    /// The VA is already mapped by this actor.
    AlreadyMapped(AbsActor, u64),
    /// The VA is not mapped by this actor.
    NotMapped(AbsActor, u64),
    /// The actor may not map this frame (wrong owner / not shared).
    NotEntitled(AbsActor, u64, AbsOwner),
    /// A host→VM donation without scrub or authentication evidence.
    UndeclassifiedDonation(u32, u64),
    /// The frame is still mapped somewhere, so ownership cannot move.
    StillMapped(u64),
    /// A reclaim without scrub evidence (would leak VM data).
    Unscrubbed(u64),
    /// A grant/revoke/reclaim on a frame the VM does not own.
    NotOwner(u32, u64, AbsOwner),
    /// A walk reached the wrong frame or lacked permission.
    BadWalk(AbsActor, u64),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::BadFrame(fr) => write!(f, "frame {fr:#x} unusable"),
            StepError::AlreadyMapped(w, v) => write!(f, "{w:?} already maps vpn {v:#x}"),
            StepError::NotMapped(w, v) => write!(f, "{w:?} does not map vpn {v:#x}"),
            StepError::NotEntitled(w, fr, o) => {
                write!(f, "{w:?} may not map frame {fr:#x} owned by {o:?}")
            }
            StepError::UndeclassifiedDonation(vm, fr) => {
                write!(f, "donation of frame {fr:#x} to VM {vm} without evidence")
            }
            StepError::StillMapped(fr) => write!(f, "frame {fr:#x} still mapped"),
            StepError::Unscrubbed(fr) => write!(f, "frame {fr:#x} reclaimed unscrubbed"),
            StepError::NotOwner(vm, fr, o) => {
                write!(f, "VM {vm} does not own frame {fr:#x} (owner {o:?})")
            }
            StepError::BadWalk(w, v) => write!(f, "illegal walk by {w:?} at vpn {v:#x}"),
        }
    }
}

/// Applies one abstract step, returning the successor state or why the
/// step is illegal. [`AbsStep::Walk`] steps leave the state unchanged.
pub fn step(uni: &AbsUniverse, s: &AbsState, st: &AbsStep) -> Result<AbsState, StepError> {
    let mut next = s.clone();
    match *st {
        AbsStep::Map {
            who,
            vpn,
            frame,
            perms,
            claim,
        } => {
            if frame >= uni.frames || uni.is_hyp(frame) {
                return Err(StepError::BadFrame(frame));
            }
            if s.map_of(who).contains_key(&vpn) {
                return Err(StepError::AlreadyMapped(who, vpn));
            }
            let page = s.page(uni, frame);
            match who {
                AbsActor::Host => {
                    // The host may map what it owns or what is shared
                    // with it.
                    if page.owner != AbsOwner::Host && !page.shared {
                        return Err(StepError::NotEntitled(who, frame, page.owner));
                    }
                }
                AbsActor::Vm(v) => {
                    if page.owner == AbsOwner::Vm(v) {
                        // Mapping its own frame: always fine.
                    } else if page.owner == AbsOwner::Host && !page.shared {
                        // Host→VM donation: the frame must be mapped
                        // nowhere and carry declassification evidence.
                        if s.mapped_anywhere(frame) {
                            return Err(StepError::StillMapped(frame));
                        }
                        if !matches!(claim, Claim::Zeroed | Claim::Authenticated) {
                            return Err(StepError::UndeclassifiedDonation(v, frame));
                        }
                        next.set_page(
                            frame,
                            AbsPage {
                                owner: AbsOwner::Vm(v),
                                shared: false,
                            },
                        );
                    } else {
                        return Err(StepError::NotEntitled(who, frame, page.owner));
                    }
                }
            }
            next.insert_mapping(who, vpn, AbsMapping { frame, perms });
        }
        AbsStep::Unmap { who, vpn } => {
            if next.remove_mapping(who, vpn).is_none() {
                return Err(StepError::NotMapped(who, vpn));
            }
        }
        AbsStep::Grant { vm, frame } => {
            let page = s.page(uni, frame);
            if page.owner != AbsOwner::Vm(vm) {
                return Err(StepError::NotOwner(vm, frame, page.owner));
            }
            next.set_page(
                frame,
                AbsPage {
                    shared: true,
                    ..page
                },
            );
        }
        AbsStep::Revoke { vm, frame } => {
            let page = s.page(uni, frame);
            if page.owner != AbsOwner::Vm(vm) {
                return Err(StepError::NotOwner(vm, frame, page.owner));
            }
            // The sharing window only closes once the host's view is
            // gone — a revoke that leaves the host mapping in place
            // would be a stale-translation hole.
            if s.host.values().any(|m| m.frame == frame) {
                return Err(StepError::StillMapped(frame));
            }
            next.set_page(
                frame,
                AbsPage {
                    shared: false,
                    ..page
                },
            );
        }
        AbsStep::Reclaim {
            vm,
            frame,
            scrubbed,
        } => {
            let page = s.page(uni, frame);
            if page.owner != AbsOwner::Vm(vm) {
                return Err(StepError::NotOwner(vm, frame, page.owner));
            }
            if s.mapped_anywhere(frame) {
                return Err(StepError::StillMapped(frame));
            }
            if !scrubbed {
                return Err(StepError::Unscrubbed(frame));
            }
            next.set_page(frame, AbsPage::DEFAULT);
        }
        AbsStep::Walk {
            who,
            vpn,
            frame,
            write,
        } => {
            let Some(m) = s.map_of(who).get(&vpn) else {
                return Err(StepError::NotMapped(who, vpn));
            };
            let allowed = m.frame == frame && (if write { m.perms.w } else { m.perms.r });
            if !allowed {
                return Err(StepError::BadWalk(who, vpn));
            }
            // Ownership consistency: reads/writes only land on frames
            // the actor is entitled to see (noninterference would flag
            // the mapping too; the walk check localises the fault).
            let page = s.page(uni, frame);
            let entitled =
                page.owner == AbsOwner::of_actor(who) || (who == AbsActor::Host && page.shared);
            if !entitled {
                return Err(StepError::BadWalk(who, vpn));
            }
        }
    }
    Ok(next)
}

// --- noninterference ------------------------------------------------

/// A table whose mappings violated noninterference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsTable {
    /// The host's map.
    Host,
    /// A VM's map.
    Vm(u32),
    /// A device's DMA map.
    Dev(u32),
}

/// One noninterference violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NiViolation {
    /// Stage-2 translation is off: actors address physical memory raw.
    TranslationOff,
    /// DMA is untranslated.
    DmaUnprotected,
    /// A hypervisor-private frame is visible to an actor.
    HypFrameMapped {
        /// Offending table.
        table: AbsTable,
        /// Mapped frame.
        frame: u64,
    },
    /// A mapping disagrees with frame ownership.
    OwnershipMismatch {
        /// Offending table.
        table: AbsTable,
        /// Mapped frame.
        frame: u64,
        /// The frame's recorded owner.
        owner: AbsOwner,
    },
}

/// The noninterference predicate (§5.3): each actor's map reaches only
/// frames it owns (the host additionally: frames shared with it), no
/// actor reaches hypervisor frames, and translation stays on. A state
/// satisfying this gives actors disjoint views up to explicit sharing —
/// the isolation theorem is a corollary.
pub fn noninterference(uni: &AbsUniverse, s: &AbsState) -> Vec<NiViolation> {
    let mut out = Vec::new();
    if !s.translation_on {
        out.push(NiViolation::TranslationOff);
    }
    if !s.dma_protected {
        out.push(NiViolation::DmaUnprotected);
    }
    let mut check =
        |table: AbsTable, owner_ok: &dyn Fn(AbsPage) -> bool, map: &BTreeMap<u64, AbsMapping>| {
            for m in map.values() {
                if uni.is_hyp(m.frame) {
                    out.push(NiViolation::HypFrameMapped {
                        table,
                        frame: m.frame,
                    });
                    continue;
                }
                let page = s.page(uni, m.frame);
                if !owner_ok(page) {
                    out.push(NiViolation::OwnershipMismatch {
                        table,
                        frame: m.frame,
                        owner: page.owner,
                    });
                }
            }
        };
    check(
        AbsTable::Host,
        &|p| p.owner == AbsOwner::Host || p.shared,
        &s.host,
    );
    for (&v, map) in &s.vms {
        check(AbsTable::Vm(v), &|p| p.owner == AbsOwner::Vm(v), map);
    }
    for (&d, (who, map)) in &s.devs {
        let want = AbsOwner::of_actor(*who);
        check(AbsTable::Dev(d), &|p| p.owner == want, map);
    }
    out
}

// --- abstract exploration -------------------------------------------

/// A concurrent abstract program: one step sequence per thread.
#[derive(Debug, Clone)]
pub struct AbsProgram {
    /// Per-thread step sequences.
    pub threads: Vec<Vec<AbsStep>>,
}

/// What a terminal abstract execution observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsOutcome {
    /// Every interleaving step was legal and the final state satisfies
    /// noninterference.
    Clean,
    /// A thread attempted an illegal step (rendered).
    IllegalStep(String),
    /// The final state violated noninterference (rendered).
    Insecure(String),
}

/// Exhaustive interleaving exploration of an [`AbsProgram`] over the
/// shared engine. The state is just `(AbsState, per-thread pc)` — no
/// locks, tickets, logs or memory images — which is why abstract
/// exploration is orders of magnitude smaller than the concrete
/// schedule walk for the same scenario.
#[derive(Debug, Clone)]
pub struct AbsSpace {
    /// The frame universe.
    pub uni: AbsUniverse,
    /// The initial state.
    pub init: AbsState,
    /// The program.
    pub prog: AbsProgram,
}

/// One node of the abstract interleaving walk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbsNode {
    /// Current abstract state.
    pub state: AbsState,
    /// Per-thread program counters.
    pub pcs: Vec<usize>,
}

impl StateSpace for AbsSpace {
    type State = AbsNode;
    type Emit = AbsOutcome;

    fn initial(&self) -> Vec<AbsNode> {
        vec![AbsNode {
            state: self.init.clone(),
            pcs: vec![0; self.prog.threads.len()],
        }]
    }

    fn expand(&self, node: &AbsNode, sink: &mut Sink<AbsNode, AbsOutcome>) {
        let mut terminal = true;
        for (t, thread) in self.prog.threads.iter().enumerate() {
            let pc = node.pcs[t];
            if pc >= thread.len() {
                continue;
            }
            terminal = false;
            match step(&self.uni, &node.state, &thread[pc]) {
                Ok(state) => {
                    let mut pcs = node.pcs.clone();
                    pcs[t] += 1;
                    sink.push(AbsNode { state, pcs });
                }
                Err(e) => sink.emit(AbsOutcome::IllegalStep(format!(
                    "thread {t} step {pc}: {e}"
                ))),
            }
        }
        if terminal {
            let ni = noninterference(&self.uni, &node.state);
            sink.emit(if ni.is_empty() {
                AbsOutcome::Clean
            } else {
                AbsOutcome::Insecure(format!("{ni:?}"))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni() -> AbsUniverse {
        AbsUniverse {
            frames: 0x100,
            hyp: vec![(0, 0x10)],
        }
    }

    fn donate(s: &AbsState, vm: u32, vpn: u64, frame: u64) -> Result<AbsState, StepError> {
        step(
            &uni(),
            s,
            &AbsStep::Map {
                who: AbsActor::Vm(vm),
                vpn,
                frame,
                perms: AbsPerms::RWX,
                claim: Claim::Zeroed,
            },
        )
    }

    #[test]
    fn donation_moves_ownership_and_requires_evidence() {
        let s = AbsState::boot();
        let s2 = donate(&s, 1, 0, 0x20).unwrap();
        assert_eq!(
            s2.page(&uni(), 0x20).owner,
            AbsOwner::Vm(1),
            "donation transfers ownership"
        );
        // Without evidence the same step is illegal.
        let bad = step(
            &uni(),
            &s,
            &AbsStep::Map {
                who: AbsActor::Vm(1),
                vpn: 0,
                frame: 0x20,
                perms: AbsPerms::RWX,
                claim: Claim::Owned,
            },
        );
        assert_eq!(bad, Err(StepError::UndeclassifiedDonation(1, 0x20)));
    }

    #[test]
    fn host_cannot_map_vm_frames_unless_shared() {
        let s = donate(&AbsState::boot(), 1, 0, 0x20).unwrap();
        let host_map = AbsStep::Map {
            who: AbsActor::Host,
            vpn: 0x20,
            frame: 0x20,
            perms: AbsPerms::RW,
            claim: Claim::Owned,
        };
        assert!(matches!(
            step(&uni(), &s, &host_map),
            Err(StepError::NotEntitled(..))
        ));
        let shared = step(&uni(), &s, &AbsStep::Grant { vm: 1, frame: 0x20 }).unwrap();
        let s2 = step(&uni(), &shared, &host_map).unwrap();
        assert!(noninterference(&uni(), &s2).is_empty());
    }

    #[test]
    fn revoke_requires_host_unmap_first() {
        let s = donate(&AbsState::boot(), 1, 0, 0x20).unwrap();
        let s = step(&uni(), &s, &AbsStep::Grant { vm: 1, frame: 0x20 }).unwrap();
        let s = step(
            &uni(),
            &s,
            &AbsStep::Map {
                who: AbsActor::Host,
                vpn: 0x20,
                frame: 0x20,
                perms: AbsPerms::RW,
                claim: Claim::Owned,
            },
        )
        .unwrap();
        assert_eq!(
            step(&uni(), &s, &AbsStep::Revoke { vm: 1, frame: 0x20 }),
            Err(StepError::StillMapped(0x20))
        );
        let s = step(
            &uni(),
            &s,
            &AbsStep::Unmap {
                who: AbsActor::Host,
                vpn: 0x20,
            },
        )
        .unwrap();
        let s = step(&uni(), &s, &AbsStep::Revoke { vm: 1, frame: 0x20 }).unwrap();
        assert!(!s.page(&uni(), 0x20).shared);
    }

    #[test]
    fn reclaim_requires_scrub_and_no_mappings() {
        let s = donate(&AbsState::boot(), 1, 0, 0x20).unwrap();
        assert_eq!(
            step(
                &uni(),
                &s,
                &AbsStep::Reclaim {
                    vm: 1,
                    frame: 0x20,
                    scrubbed: true
                }
            ),
            Err(StepError::StillMapped(0x20))
        );
        let s = step(
            &uni(),
            &s,
            &AbsStep::Unmap {
                who: AbsActor::Vm(1),
                vpn: 0,
            },
        )
        .unwrap();
        assert_eq!(
            step(
                &uni(),
                &s,
                &AbsStep::Reclaim {
                    vm: 1,
                    frame: 0x20,
                    scrubbed: false
                }
            ),
            Err(StepError::Unscrubbed(0x20))
        );
        let s = step(
            &uni(),
            &s,
            &AbsStep::Reclaim {
                vm: 1,
                frame: 0x20,
                scrubbed: true,
            },
        )
        .unwrap();
        // Back to the boot state: the sparse maps are canonical.
        assert_eq!(s, AbsState::boot());
    }

    #[test]
    fn walk_enforces_perms_and_ownership() {
        let s = donate(&AbsState::boot(), 1, 4, 0x21).unwrap();
        let ok = AbsStep::Walk {
            who: AbsActor::Vm(1),
            vpn: 4,
            frame: 0x21,
            write: true,
        };
        assert!(step(&uni(), &s, &ok).is_ok());
        assert!(matches!(
            step(
                &uni(),
                &s,
                &AbsStep::Walk {
                    who: AbsActor::Vm(1),
                    vpn: 5,
                    frame: 0x21,
                    write: false
                }
            ),
            Err(StepError::NotMapped(..))
        ));
    }

    #[test]
    fn hyp_frames_are_unmappable_and_flagged() {
        let s = AbsState::boot();
        assert_eq!(donate(&s, 1, 0, 0x5), Err(StepError::BadFrame(0x5)));
        // Even a forged state is caught by noninterference.
        let mut forged = s;
        forged.insert_mapping(
            AbsActor::Host,
            0x5,
            AbsMapping {
                frame: 0x5,
                perms: AbsPerms::RO,
            },
        );
        assert!(noninterference(&uni(), &forged)
            .iter()
            .any(|v| matches!(v, NiViolation::HypFrameMapped { .. })));
    }

    #[test]
    fn abstract_exploration_is_small_and_clean() {
        // Two independent donation threads: the diamond interleaving
        // lattice has (2+2 choose 2) = 6 interior nodes + terminals.
        let prog = AbsProgram {
            threads: vec![
                vec![
                    AbsStep::Map {
                        who: AbsActor::Vm(1),
                        vpn: 0,
                        frame: 0x20,
                        perms: AbsPerms::RWX,
                        claim: Claim::Zeroed,
                    },
                    AbsStep::Unmap {
                        who: AbsActor::Vm(1),
                        vpn: 0,
                    },
                ],
                vec![
                    AbsStep::Map {
                        who: AbsActor::Vm(2),
                        vpn: 0,
                        frame: 0x30,
                        perms: AbsPerms::RWX,
                        claim: Claim::Zeroed,
                    },
                    AbsStep::Unmap {
                        who: AbsActor::Vm(2),
                        vpn: 0,
                    },
                ],
            ],
        };
        let space = AbsSpace {
            uni: uni(),
            init: AbsState::boot(),
            prog,
        };
        let ex = vrm_explore::explore(&space, &vrm_explore::ExploreConfig::with_max_states(1024))
            .unwrap();
        assert!(ex.stats.completeness.is_exhaustive());
        assert_eq!(ex.stats.states, 9, "3x3 pc lattice, states dedup by pcs");
        assert!(ex.emits.iter().all(|o| *o == AbsOutcome::Clean));
    }
}
