//! VRM: Verification on Relaxed Memory — umbrella crate.
//!
//! A Rust reproduction of *Formal Verification of a Multiprocessor
//! Hypervisor on Arm Relaxed Memory Hardware* (SOSP 2021). This crate
//! re-exports the workspace members:
//!
//! * [`explore`] — the shared state-space exploration engine (budgets,
//!   graceful truncation, checkpoints, three-valued verdicts);
//! * [`memmodel`] — executable Arm memory models (SC, Armv8 axiomatic,
//!   Promising Arm with MMU/TLB);
//! * [`core`] — the VRM framework: the push/pull Promising model, the six
//!   wDRF conditions, and the wDRF theorem checker;
//! * [`mmu`] — page tables, page pools, TLB model, transactional checking;
//! * [`spec`] — the abstract ownership machine: the refinement spec with
//!   its step relation and noninterference predicate;
//! * [`sekvm`] — the executable SeKVM/KCore hypervisor model with dynamic
//!   wDRF and security validation, checked against [`spec`] by
//!   per-transition refinement;
//! * [`hwsim`] — the cycle-approximate performance simulator regenerating
//!   the paper's evaluation;
//! * [`mutate`] — the mutation-testing campaign proving those checkers
//!   kill injected relaxed-memory bugs (see the `mutate` binary);
//! * [`obs`] — the observability layer: process-global counters,
//!   `VRM_TRACE` JSON-lines tracing, histograms, and the
//!   schema-versioned `BENCH_*.json` perf-record format;
//! * [`serve`] — the verification-as-a-service daemon: content-addressed
//!   verdict caching, two-lane budget scheduling, and checkpoint resume
//!   over a newline-delimited JSON wire protocol (see the `serve`
//!   binary).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![warn(missing_docs)]

pub use vrm_core as core;
pub use vrm_explore as explore;
pub use vrm_hwsim as hwsim;
pub use vrm_memmodel as memmodel;
pub use vrm_mmu as mmu;
pub use vrm_mutate as mutate;
pub use vrm_obs as obs;
pub use vrm_sekvm as sekvm;
pub use vrm_serve as serve;
pub use vrm_spec as spec;
