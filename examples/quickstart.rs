//! Quickstart: see relaxed memory break an SC-verified program, then see
//! the wDRF theorem check certify the repaired version.
//!
//! Run with `cargo run --example quickstart`.

use vrm::core::{check_wdrf, KernelSpec, WdrfCheckConfig};
use vrm::memmodel::builder::ProgramBuilder;
use vrm::memmodel::ir::{Program, Reg};
use vrm::memmodel::promising::{enumerate_promising, find_witness, PromisingConfig};
use vrm::memmodel::sc::enumerate_sc;

/// Message passing: T0 publishes data then a flag; T1 polls the flag and
/// reads the data. `barriers` selects release/acquire accesses.
fn message_passing(barriers: bool) -> Program {
    let (data, flag) = (0x10, 0x20);
    let mut p = ProgramBuilder::new(if barriers { "MP+rel+acq" } else { "MP" });
    p.thread("producer", |t| {
        t.store(data, 42u64, false);
        t.store(flag, 1u64, barriers); // store-release when fixed
    });
    p.thread("consumer", |t| {
        t.load(Reg(0), flag, barriers); // load-acquire when fixed
        t.load(Reg(1), data, false);
    });
    p.observe_reg("flag", 1, Reg(0));
    p.observe_reg("data", 1, Reg(1));
    p.build()
}

fn main() {
    // 1. The buggy program: exhaustively enumerate both models.
    let buggy = message_passing(false);
    let sc = enumerate_sc(&buggy).unwrap();
    let rm = enumerate_promising(&buggy).unwrap();
    println!("Message passing WITHOUT barriers");
    println!("  SC outcomes:\n{sc}");
    println!("  Arm (Promising) outcomes:\n{rm}");
    println!(
        "  stale read (flag=1, data=0) on Arm: {}   on SC: {}",
        rm.contains_binding(&[("flag", 1), ("data", 0)]),
        sc.contains_binding(&[("flag", 1), ("data", 0)]),
    );
    // How does the hardware get there? Ask for a witness execution.
    let cfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    if let Some(witness) = find_witness(&buggy, &cfg, &[("flag", 1), ("data", 0)]).unwrap() {
        println!("  witness execution:");
        for step in witness {
            println!("    {step}");
        }
    }
    println!();

    // 2. The fixed program passes the wDRF theorem check: every Arm
    //    behaviour is an SC behaviour, so SC-model proofs transfer.
    let fixed = message_passing(true);
    let spec = KernelSpec::for_kernel_threads([0, 1]);
    let cfg = WdrfCheckConfig {
        skip_sync_conditions: true, // no push/pull instrumentation here
        ..Default::default()
    };
    let verdict = check_wdrf(&fixed, &spec, &cfg).unwrap();
    println!("Message passing WITH release/acquire barriers");
    println!("{verdict}");
    assert!(verdict.rm_subset_of_sc);
    println!("=> the SC-model proof of this program holds on Arm relaxed memory.");
}
