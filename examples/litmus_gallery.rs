//! Litmus gallery: runs the full cross-model conformance battery and the
//! paper's Examples 1–7.
//!
//! Run with `cargo run --example litmus_gallery`.

use vrm::core::paper_examples;
use vrm::memmodel::litmus::{battery, check};
use vrm::memmodel::promising::{enumerate_promising_with, PromisingConfig};
use vrm::memmodel::sc::enumerate_sc;
use vrm::memmodel::values::ValueConfig;

fn main() {
    println!("Cross-model conformance battery");
    println!("(Promising Arm operational model vs Armv8 axiomatic model)");
    println!();
    println!(
        "{:<22} {:>8} {:>8} {:>8}   {:>7} {:>8}",
        "test", "SC", "ArmOp", "ArmAx", "agree", "verdicts"
    );
    println!("{}", "-".repeat(68));
    let mut all_ok = true;
    for test in battery() {
        let c = check(&test).unwrap();
        all_ok &= c.ok();
        println!(
            "{:<22} {:>8} {:>8} {:>8}   {:>7} {:>8}",
            c.name,
            c.sc.len(),
            c.promising.len(),
            c.axiomatic.len(),
            if c.models_agree && c.sc_subsumed {
                "yes"
            } else {
                "NO"
            },
            if c.verdicts_match { "ok" } else { "WRONG" },
        );
    }
    println!();
    println!(
        "battery: {}",
        if all_ok {
            "all tests conform (operational == axiomatic, SC subsumed, expected verdicts)"
        } else {
            "CONFORMANCE FAILURES ABOVE"
        }
    );
    println!();

    println!("Paper examples (sections 1-2)");
    println!();
    let cfg = |needs: bool| PromisingConfig {
        promises: needs,
        max_promises_per_thread: 1,
        value_cfg: ValueConfig {
            max_rounds: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    for ex in paper_examples::all() {
        let rm = enumerate_promising_with(&ex.buggy, &cfg(ex.needs_promises))
            .unwrap()
            .outcomes;
        let sc = enumerate_sc(&ex.buggy).unwrap();
        println!("{}", ex.name);
        println!(
            "  {}",
            ex.description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
        let cond: Vec<String> = ex.rm_only.iter().map(|(n, v)| format!("{n}={v}")).collect();
        println!(
            "  [{}] is {} on Arm, {} on SC",
            cond.join(", "),
            if rm.contains_binding(&ex.rm_only) {
                "reachable"
            } else {
                "UNREACHABLE (?)"
            },
            if sc.contains_binding(&ex.rm_only) {
                "REACHABLE (?)"
            } else {
                "unreachable"
            },
        );
        println!();
    }
}
