//! VM lifecycle on the multiprocessor machine, plus the paper's
//! evaluation figures from the performance simulator.
//!
//! Run with `cargo run --example vm_lifecycle`.

use vrm::hwsim::{
    simulate_app, simulate_micro, simulate_multivm, workloads, HwConfig, HypConfig, HypKind,
    KernelVersion,
};
use vrm::sekvm::layout::VM_POOL_PFN;
use vrm::sekvm::machine::{lifecycle_script, Machine};
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::KCoreConfig;

fn main() {
    // --- Functional: 8 CPUs booting, running, sharing, tearing down VMs.
    println!("8-CPU concurrent VM lifecycle on the SeKVM model");
    let scripts = (0..8)
        .map(|i| {
            lifecycle_script(
                i as u64,
                VM_POOL_PFN.0 + (i as u64) * 8,
                VM_POOL_PFN.0 + (i as u64) * 8 + 4,
            )
        })
        .collect();
    let mut m = Machine::new(KCoreConfig::default(), scripts, 1234);
    let report = m.run(5_000_000);
    println!(
        "  {} operations completed over {} scheduler steps",
        report.ops_ok, report.steps
    );
    println!(
        "  lock contention: {} spin iterations across all CPUs",
        report.total_spins
    );
    println!(
        "  failures: {}, expectation violations: {}, invariant violations: {}",
        report.failures.len(),
        report.expectation_violations.len(),
        check_invariants(&m.kcore).len()
    );
    assert!(report.clean());
    println!();

    // --- Performance: one microbenchmark row and one Figure 8/9 sample.
    let hw = HwConfig::m400();
    let kvm = HypConfig::new(HypKind::Kvm, KernelVersion::V4_18);
    let sekvm = HypConfig::new(HypKind::SeKvm, KernelVersion::V4_18);
    let mk = simulate_micro(hw, kvm);
    let ms = simulate_micro(hw, sekvm);
    println!(
        "m400 hypercall cost: KVM {} cycles, SeKVM {} cycles",
        mk.hypercall, ms.hypercall
    );
    let apache = workloads()
        .into_iter()
        .find(|w| w.name == "Apache")
        .unwrap();
    println!(
        "Apache on m400, normalized to native: KVM {:.3}, SeKVM {:.3}",
        simulate_app(hw, kvm, &apache).normalized,
        simulate_app(hw, sekvm, &apache).normalized,
    );
    println!(
        "Apache at 32 concurrent VMs:          KVM {:.3}, SeKVM {:.3}",
        simulate_multivm(hw, kvm, &apache, 32),
        simulate_multivm(hw, sekvm, &apache, 32),
    );
    println!();
    println!("Full tables/figures: cargo run -p vrm-bench --bin table3 | fig8 | fig9");
}
