//! The §5 pipeline: verify that the SeKVM model satisfies the wDRF
//! conditions, then show the validators reject every mutant.
//!
//! Run with `cargo run --example verify_sekvm`.

use vrm::core::pushpull::check_pushpull;
use vrm::core::{paper_examples, KernelSpec};
use vrm::memmodel::promising::PromisingConfig;
use vrm::sekvm::layout::VM_POOL_PFN;
use vrm::sekvm::machine::{lifecycle_script, Machine};
use vrm::sekvm::mutants;
use vrm::sekvm::security::check_invariants;
use vrm::sekvm::wdrf::validate_log;
use vrm::sekvm::KCoreConfig;

/// Boots one 2-page VM directly on a fresh KCore (used by the mutant
/// scenarios).
fn boot_one_vm(cfg: KCoreConfig) -> vrm::sekvm::KCore {
    use vrm::sekvm::layout::{page_addr, PAGE_WORDS};
    use vrm::sekvm::KCore;
    let mut k = KCore::boot(cfg);
    let pfns = vec![VM_POOL_PFN.0, VM_POOL_PFN.0 + 1];
    let mut words = Vec::new();
    for &pfn in &pfns {
        for w in 0..PAGE_WORDS {
            let v = pfn + w;
            k.mem.write(page_addr(pfn) + w, v);
            words.push(v);
        }
    }
    let hash = KCore::image_hash(&words);
    let vmid = k.register_vm(0).unwrap();
    k.register_vcpu(0, vmid).unwrap();
    k.set_boot_info(0, vmid, pfns, hash).unwrap();
    k.remap_vm_image(0, vmid).unwrap();
    k.verify_vm_image(0, vmid).unwrap();
    k
}

fn scripts(n: usize) -> Vec<vrm::sekvm::Script> {
    (0..n)
        .map(|i| {
            lifecycle_script(
                i as u64,
                VM_POOL_PFN.0 + (i as u64) * 8,
                VM_POOL_PFN.0 + (i as u64) * 8 + 4,
            )
        })
        .collect()
}

fn main() {
    // --- Step 1 (§5.2): the lock and its use, on the RM model ----------
    println!("[1/4] DRF-Kernel + No-Barrier-Misuse: Figure 7 ticket lock");
    let gen_vmid = paper_examples::gen_vmid_program(true);
    let mut spec = KernelSpec::for_kernel_threads([0, 1]);
    spec.shared_data = [0x12].into(); // next_vmid
    let cfg = PromisingConfig {
        promises: false,
        ..Default::default()
    };
    let r = check_pushpull(&gen_vmid, &spec, &cfg).unwrap();
    println!(
        "      push/pull Promising: {} states, ownership {}, barriers {}",
        r.states_explored,
        if r.drf_kernel_holds() { "PASS" } else { "FAIL" },
        if r.no_barrier_misuse_holds() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    // The barrier-less lock (Example 2) must fail.
    let broken = paper_examples::gen_vmid_program(false);
    let rb = check_pushpull(&broken, &spec, &cfg).unwrap();
    println!(
        "      without barriers (Example 2): No-Barrier-Misuse {} (as expected)",
        if rb.no_barrier_misuse_holds() {
            "PASS (?)"
        } else {
            "FAIL"
        }
    );
    println!();

    // --- Step 2 (§5.1–5.5): conditions on full machine executions ------
    println!("[2/4] Conditions 3-6 over multiprocessor machine executions");
    for levels in [3u32, 4u32] {
        let mut m = Machine::new(
            KCoreConfig {
                s2_levels: levels,
                ..Default::default()
            },
            scripts(4),
            2024,
        );
        let report = m.run(1_000_000);
        let wdrf = validate_log(&m.kcore.log);
        let inv = check_invariants(&m.kcore);
        println!(
            "      {levels}-level stage-2: {} ops, {} events, wDRF violations: {}, \
             invariant violations: {}",
            report.ops_ok,
            m.kcore.log.len(),
            wdrf.len(),
            inv.len()
        );
        assert!(report.clean() && wdrf.is_empty() && inv.is_empty());
    }
    println!();

    // --- Step 3: security properties ------------------------------------
    println!("[3/4] VM confidentiality and integrity under adversarial KServ");
    let mut m = Machine::new(KCoreConfig::default(), scripts(4), 7);
    let report = m.run(1_000_000);
    println!(
        "      4 CPUs x full VM lifecycle: clean = {}, invariants: {}",
        report.clean(),
        check_invariants(&m.kcore).len()
    );
    println!();

    // --- Step 4: the validators catch broken variants --------------------
    println!("[4/4] Mutant suite: every safeguard removal is caught");
    for mutant in mutants::all() {
        let caught = match mutant.caught_by {
            mutants::CaughtBy::SequentialTlbi | mutants::CaughtBy::LockDiscipline => {
                let mut m = Machine::new(mutant.cfg, scripts(2), 99);
                m.run(1_000_000);
                !validate_log(&m.kcore.log).is_empty()
            }
            mutants::CaughtBy::SecurityInvariants => {
                // Boot a VM, let the (unchecked) KServ fault in a mapping
                // of a VM-owned page, and watch the invariant sweep flag it.
                let mut k = boot_one_vm(mutant.cfg);
                let vm_pfn = k.vm(0).unwrap().image_pfns[0];
                k.kserv_fault(1, vm_pfn).expect("mutant lets this through");
                !check_invariants(&k).is_empty()
            }
            mutants::CaughtBy::Refinement => {
                // The concrete transition stops simulating the abstract
                // ownership machine (unscrubbed reclaim, leaked ownership
                // transfer, kept share, skipped host unmap).
                let mut m = Machine::new(mutant.cfg, scripts(2), 99);
                let (_, violations) = m.run_refined(1_000_000);
                !violations.is_empty()
            }
        };
        println!(
            "      {:<28} caught by {:?}: {}",
            mutant.name,
            mutant.caught_by,
            if caught { "yes" } else { "NO (!)" }
        );
        assert!(caught);
    }
    println!();
    println!("SeKVM model verification pipeline complete.");
}
